//! The intermediate verification language (IVL).
//!
//! A flat, non-branching SSA form mirroring the paper's BoogieIVL strands
//! (Figure 3): every intermediate value computed during execution gets a
//! fresh temporary, registers are always 64-bit with sub-register access
//! expressed through extract/concat, and memory is an SSA array threaded
//! through `store` operations.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The sort of an IVL variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sort {
    /// A bitvector of the given width (1..=64).
    Bv(u32),
    /// A byte-addressed memory array.
    Mem,
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Bv(w) => write!(f, "bv{w}"),
            Sort::Mem => write!(f, "mem"),
        }
    }
}

/// Why an input variable exists — used for type-respecting input
/// correspondences in the VCP search (§5.5 "maintaining typing").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InputKind {
    /// The value of a register at strand entry.
    Register,
    /// The initial memory array.
    Memory,
    /// The havoced result of an external call (return register).
    CallResult,
    /// A register havoced by a call (caller-saved clobber).
    Clobber,
}

/// A variable index into [`Proc::vars`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VarId(pub u32);

impl VarId {
    /// The index as usize.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A variable declaration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Var {
    /// Human-readable name (`v1`, `rax_in`, `mem0`).
    pub name: String,
    /// Sort.
    pub sort: Sort,
    /// `Some(kind)` if this is an input (unconstrained), `None` for temps.
    pub input: Option<InputKind>,
}

/// An operand: a variable or a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// A variable reference.
    Var(VarId),
    /// A bitvector constant of the given width.
    Const {
        /// The value (masked to `width` bits).
        value: u64,
        /// The width in bits.
        width: u32,
    },
}

impl Operand {
    /// A width-64 constant.
    pub fn c64(value: u64) -> Operand {
        Operand::Const { value, width: 64 }
    }
}

/// IVL operations. Except where noted, all bitvector arguments share one
/// width, which is also the result width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Identity (a plain copy).
    Copy,
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (amount taken modulo width).
    Shl,
    /// Logical right shift.
    LShr,
    /// Arithmetic right shift.
    AShr,
    /// Bitwise complement.
    Not,
    /// Two's-complement negation.
    Neg,
    /// Equality → `bv1`.
    Eq,
    /// Disequality → `bv1`.
    Ne,
    /// Unsigned less-than → `bv1`.
    Ult,
    /// Unsigned less-or-equal → `bv1`.
    Ule,
    /// Signed less-than → `bv1`.
    Slt,
    /// Signed less-or-equal → `bv1`.
    Sle,
    /// `ite(c: bv1, t, e)`.
    Ite,
    /// Zero-extend to the given width.
    Zext(u32),
    /// Sign-extend to the given width.
    Sext(u32),
    /// Extract bits `hi..=lo` (result width `hi - lo + 1`).
    Extract(u32, u32),
    /// Concatenate `(hi, lo)` — result width is the sum.
    Concat,
    /// `load(mem, addr) → bv{w}` (little-endian, `w/8` bytes).
    Load(u32),
    /// `store(mem, addr, value: bv{w}) → mem`.
    Store(u32),
}

/// One SSA assignment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stmt {
    /// Destination variable (assigned exactly once).
    pub dst: VarId,
    /// Operation.
    pub op: Op,
    /// Arguments.
    pub args: Vec<Operand>,
}

/// A non-branching IVL procedure: the lifted form of one strand.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Proc {
    /// Name (diagnostic only).
    pub name: String,
    /// All variables; inputs and temporaries.
    pub vars: Vec<Var>,
    /// Statements in dependency order.
    pub stmts: Vec<Stmt>,
}

impl Proc {
    /// Creates an empty procedure.
    pub fn new(name: impl Into<String>) -> Proc {
        Proc {
            name: name.into(),
            vars: Vec::new(),
            stmts: Vec::new(),
        }
    }

    /// Declares a new variable, returning its id.
    pub fn declare(
        &mut self,
        name: impl Into<String>,
        sort: Sort,
        input: Option<InputKind>,
    ) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(Var {
            name: name.into(),
            sort,
            input,
        });
        id
    }

    /// Appends `dst = op(args)`.
    pub fn assign(&mut self, dst: VarId, op: Op, args: Vec<Operand>) {
        self.stmts.push(Stmt { dst, op, args });
    }

    /// The variable record for `id`.
    pub fn var(&self, id: VarId) -> &Var {
        &self.vars[id.index()]
    }

    /// Ids of all input variables.
    pub fn inputs(&self) -> Vec<VarId> {
        (0..self.vars.len() as u32)
            .map(VarId)
            .filter(|id| self.var(*id).input.is_some())
            .collect()
    }

    /// Ids of all non-input (computed) variables.
    pub fn temps(&self) -> Vec<VarId> {
        (0..self.vars.len() as u32)
            .map(VarId)
            .filter(|id| self.var(*id).input.is_none())
            .collect()
    }

    /// The sort of an operand.
    pub fn operand_sort(&self, o: &Operand) -> Sort {
        match o {
            Operand::Var(v) => self.var(*v).sort,
            Operand::Const { width, .. } => Sort::Bv(*width),
        }
    }

    /// Validates SSA form and operand sorts, returning human-readable
    /// problems (empty when well-formed).
    pub fn validate(&self) -> Vec<String> {
        let mut errors = Vec::new();
        let mut assigned = vec![false; self.vars.len()];
        for (i, v) in self.vars.iter().enumerate() {
            if v.input.is_some() {
                assigned[i] = true;
            }
        }
        for (k, s) in self.stmts.iter().enumerate() {
            for a in &s.args {
                if let Operand::Var(v) = a {
                    if v.index() >= self.vars.len() {
                        errors.push(format!("stmt {k}: out-of-range var"));
                    } else if !assigned[v.index()] {
                        errors.push(format!(
                            "stmt {k}: use of `{}` before assignment",
                            self.var(*v).name
                        ));
                    }
                }
            }
            if s.dst.index() >= self.vars.len() {
                errors.push(format!("stmt {k}: out-of-range dst"));
                continue;
            }
            if assigned[s.dst.index()] {
                errors.push(format!(
                    "stmt {k}: `{}` assigned twice",
                    self.var(s.dst).name
                ));
            }
            assigned[s.dst.index()] = true;
            if let Some(err) = self.check_stmt_sorts(s) {
                errors.push(format!("stmt {k}: {err}"));
            }
        }
        for (i, v) in self.vars.iter().enumerate() {
            if !assigned[i] {
                errors.push(format!("`{}` never assigned", v.name));
            }
        }
        errors
    }

    fn check_stmt_sorts(&self, s: &Stmt) -> Option<String> {
        let sorts: Vec<Sort> = s.args.iter().map(|a| self.operand_sort(a)).collect();
        let dst = self.var(s.dst).sort;
        let bv = |s: &Sort| match s {
            Sort::Bv(w) => Some(*w),
            Sort::Mem => None,
        };
        let expect = |ok: bool, msg: &str| if ok { None } else { Some(msg.to_string()) };
        match s.op {
            Op::Copy => expect(sorts.len() == 1 && sorts[0] == dst, "copy sort mismatch"),
            Op::Add
            | Op::Sub
            | Op::Mul
            | Op::And
            | Op::Or
            | Op::Xor
            | Op::Shl
            | Op::LShr
            | Op::AShr => expect(
                sorts.len() == 2 && sorts[0] == sorts[1] && sorts[0] == dst && bv(&dst).is_some(),
                "binary bv op sort mismatch",
            ),
            Op::Not | Op::Neg => expect(
                sorts.len() == 1 && sorts[0] == dst && bv(&dst).is_some(),
                "unary mismatch",
            ),
            Op::Eq | Op::Ne | Op::Ult | Op::Ule | Op::Slt | Op::Sle => expect(
                sorts.len() == 2 && sorts[0] == sorts[1] && dst == Sort::Bv(1),
                "comparison sort mismatch",
            ),
            Op::Ite => expect(
                sorts.len() == 3
                    && sorts[0] == Sort::Bv(1)
                    && sorts[1] == sorts[2]
                    && sorts[1] == dst,
                "ite sort mismatch",
            ),
            Op::Zext(to) | Op::Sext(to) => expect(
                sorts.len() == 1
                    && matches!(sorts[0], Sort::Bv(w) if w <= to)
                    && dst == Sort::Bv(to),
                "extension sort mismatch",
            ),
            Op::Extract(hi, lo) => expect(
                sorts.len() == 1
                    && hi >= lo
                    && matches!(sorts[0], Sort::Bv(w) if hi < w)
                    && dst == Sort::Bv(hi - lo + 1),
                "extract sort mismatch",
            ),
            Op::Concat => {
                let widths: Option<Vec<u32>> = sorts.iter().map(bv).collect();
                match widths {
                    Some(ws) if ws.len() == 2 => {
                        expect(dst == Sort::Bv(ws[0] + ws[1]), "concat width mismatch")
                    }
                    _ => Some("concat needs two bitvectors".into()),
                }
            }
            Op::Load(w) => expect(
                sorts.len() == 2
                    && sorts[0] == Sort::Mem
                    && sorts[1] == Sort::Bv(64)
                    && dst == Sort::Bv(w),
                "load sort mismatch",
            ),
            Op::Store(w) => expect(
                sorts.len() == 3
                    && sorts[0] == Sort::Mem
                    && sorts[1] == Sort::Bv(64)
                    && sorts[2] == Sort::Bv(w)
                    && dst == Sort::Mem,
                "store sort mismatch",
            ),
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Var(v) => write!(f, "%{}", v.0),
            Operand::Const { value, width } => write!(f, "{value:#x}:bv{width}"),
        }
    }
}

impl Proc {
    fn fmt_operand(&self, o: &Operand) -> String {
        match o {
            Operand::Var(v) => self.var(*v).name.clone(),
            Operand::Const { value, width } => format!("{value:#x}:bv{width}"),
        }
    }
}

impl fmt::Display for Proc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc {}(", self.name)?;
        for (i, id) in self.inputs().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let v = self.var(*id);
            write!(f, "{}: {}", v.name, v.sort)?;
        }
        writeln!(f, ")")?;
        for s in &self.stmts {
            let args: Vec<String> = s.args.iter().map(|a| self.fmt_operand(a)).collect();
            writeln!(
                f,
                "  {} = {:?}({})",
                self.var(s.dst).name,
                s.op,
                args.join(", ")
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_simple_proc() {
        let mut p = Proc::new("s");
        let r = p.declare("r12_in", Sort::Bv(64), Some(InputKind::Register));
        let v1 = p.declare("v1", Sort::Bv(64), None);
        p.assign(v1, Op::Add, vec![Operand::Var(r), Operand::c64(0x13)]);
        assert!(p.validate().is_empty(), "{:?}", p.validate());
    }

    #[test]
    fn validate_rejects_use_before_assign() {
        let mut p = Proc::new("s");
        let v1 = p.declare("v1", Sort::Bv(64), None);
        let v2 = p.declare("v2", Sort::Bv(64), None);
        p.assign(v1, Op::Copy, vec![Operand::Var(v2)]);
        p.assign(v2, Op::Copy, vec![Operand::c64(0)]);
        assert!(!p.validate().is_empty());
    }

    #[test]
    fn validate_rejects_double_assignment() {
        let mut p = Proc::new("s");
        let v1 = p.declare("v1", Sort::Bv(64), None);
        p.assign(v1, Op::Copy, vec![Operand::c64(0)]);
        p.assign(v1, Op::Copy, vec![Operand::c64(1)]);
        assert!(!p.validate().is_empty());
    }

    #[test]
    fn validate_checks_sorts() {
        let mut p = Proc::new("s");
        let a = p.declare("a", Sort::Bv(64), Some(InputKind::Register));
        let v = p.declare("v", Sort::Bv(32), None);
        p.assign(v, Op::Add, vec![Operand::Var(a), Operand::c64(1)]);
        assert!(!p.validate().is_empty());
    }

    #[test]
    fn extract_and_concat_widths() {
        let mut p = Proc::new("s");
        let a = p.declare("a", Sort::Bv(64), Some(InputKind::Register));
        let lo = p.declare("lo", Sort::Bv(8), None);
        let hi = p.declare("hi", Sort::Bv(56), None);
        let back = p.declare("back", Sort::Bv(64), None);
        p.assign(lo, Op::Extract(7, 0), vec![Operand::Var(a)]);
        p.assign(hi, Op::Extract(63, 8), vec![Operand::Var(a)]);
        p.assign(back, Op::Concat, vec![Operand::Var(hi), Operand::Var(lo)]);
        assert!(p.validate().is_empty(), "{:?}", p.validate());
    }

    #[test]
    fn inputs_and_temps_partition_vars() {
        let mut p = Proc::new("s");
        let a = p.declare("a", Sort::Bv(64), Some(InputKind::Register));
        let m = p.declare("mem0", Sort::Mem, Some(InputKind::Memory));
        let v = p.declare("v", Sort::Bv(8), None);
        p.assign(v, Op::Load(8), vec![Operand::Var(m), Operand::Var(a)]);
        assert_eq!(p.inputs(), vec![a, m]);
        assert_eq!(p.temps(), vec![v]);
    }
}
