//! A textual format for IVL procedures, with a parser that round-trips
//! the printer — the analogue of the `.bpl` files the paper's pipeline
//! materializes between SMACK and Boogie (§5.1.1). Useful for golden
//! tests, debugging dumps and exchanging strands between tools.
//!
//! ```text
//! proc heartbleed#3(r12_in1: bv64, mem_in2: mem)
//!   v1 = Add(r12_in1, 0x13:bv64)
//!   v2 = Load(8)(mem_in2, v1)
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::ast::{InputKind, Op, Operand, Proc, Sort, VarId};

/// An error from [`parse_proc_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IVL text error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TextError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, TextError> {
    Err(TextError {
        line,
        message: message.into(),
    })
}

fn parse_sort(s: &str, line: usize) -> Result<Sort, TextError> {
    if s == "mem" {
        return Ok(Sort::Mem);
    }
    if let Some(w) = s.strip_prefix("bv") {
        if let Ok(w) = w.parse::<u32>() {
            if (1..=64).contains(&w) {
                return Ok(Sort::Bv(w));
            }
        }
    }
    err(line, format!("unknown sort `{s}`"))
}

fn parse_op(name: &str, line: usize) -> Result<Op, TextError> {
    // Parenthesized parameters, e.g. Zext(64), Extract(31, 0), Load(8).
    let (head, params) = match name.find('(') {
        Some(i) => {
            let inner = name[i + 1..].strip_suffix(')').ok_or_else(|| TextError {
                line,
                message: format!("bad op `{name}`"),
            })?;
            let params: Result<Vec<u32>, _> =
                inner.split(',').map(|p| p.trim().parse::<u32>()).collect();
            (
                &name[..i],
                params.map_err(|_| TextError {
                    line,
                    message: format!("bad op parameters in `{name}`"),
                })?,
            )
        }
        None => (name, Vec::new()),
    };
    let p = |k: usize| -> Result<u32, TextError> {
        params.get(k).copied().ok_or_else(|| TextError {
            line,
            message: format!("op `{head}` missing parameter {k}"),
        })
    };
    Ok(match head {
        "Copy" => Op::Copy,
        "Add" => Op::Add,
        "Sub" => Op::Sub,
        "Mul" => Op::Mul,
        "And" => Op::And,
        "Or" => Op::Or,
        "Xor" => Op::Xor,
        "Shl" => Op::Shl,
        "LShr" => Op::LShr,
        "AShr" => Op::AShr,
        "Not" => Op::Not,
        "Neg" => Op::Neg,
        "Eq" => Op::Eq,
        "Ne" => Op::Ne,
        "Ult" => Op::Ult,
        "Ule" => Op::Ule,
        "Slt" => Op::Slt,
        "Sle" => Op::Sle,
        "Ite" => Op::Ite,
        "Zext" => Op::Zext(p(0)?),
        "Sext" => Op::Sext(p(0)?),
        "Extract" => Op::Extract(p(0)?, p(1)?),
        "Concat" => Op::Concat,
        "Load" => Op::Load(p(0)?),
        "Store" => Op::Store(p(0)?),
        _ => return err(line, format!("unknown op `{head}`")),
    })
}

/// The result sort of `op` applied to operands of the given sorts.
fn result_sort(op: Op, args: &[Sort], line: usize) -> Result<Sort, TextError> {
    let bv0 = |line| match args.first() {
        Some(Sort::Bv(w)) => Ok(Sort::Bv(*w)),
        _ => err(line, "expected bitvector first operand"),
    };
    Ok(match op {
        Op::Copy => *args.first().ok_or(TextError {
            line,
            message: "copy needs an operand".into(),
        })?,
        Op::Add
        | Op::Sub
        | Op::Mul
        | Op::And
        | Op::Or
        | Op::Xor
        | Op::Shl
        | Op::LShr
        | Op::AShr
        | Op::Not
        | Op::Neg => bv0(line)?,
        Op::Eq | Op::Ne | Op::Ult | Op::Ule | Op::Slt | Op::Sle => Sort::Bv(1),
        Op::Ite => *args.get(1).ok_or(TextError {
            line,
            message: "ite needs three operands".into(),
        })?,
        Op::Zext(w) | Op::Sext(w) | Op::Load(w) => Sort::Bv(w),
        Op::Extract(hi, lo) => Sort::Bv(hi - lo + 1),
        Op::Concat => match (args.first(), args.get(1)) {
            (Some(Sort::Bv(a)), Some(Sort::Bv(b))) => Sort::Bv(a + b),
            _ => return err(line, "concat needs two bitvectors"),
        },
        Op::Store(_) => Sort::Mem,
    })
}

/// Serializes `p` to its textual form (this is exactly what the `Display`
/// impl prints).
pub fn proc_to_text(p: &Proc) -> String {
    p.to_string()
}

/// Parses the textual form produced by [`proc_to_text`].
///
/// Input kinds are recovered from the variable-name conventions the lifter
/// uses (`*_in` → register/memory/call-result inputs).
///
/// # Errors
///
/// Returns a [`TextError`] on malformed input.
pub fn parse_proc_text(text: &str) -> Result<Proc, TextError> {
    let mut lines = text.lines().enumerate();
    let (hline, header) = loop {
        match lines.next() {
            Some((i, l)) if l.trim().is_empty() => {
                let _ = i;
                continue;
            }
            Some((i, l)) => break (i + 1, l.trim()),
            None => return err(0, "empty input"),
        }
    };
    let rest = header.strip_prefix("proc ").ok_or_else(|| TextError {
        line: hline,
        message: "expected `proc`".into(),
    })?;
    let open = rest.find('(').ok_or_else(|| TextError {
        line: hline,
        message: "expected `(`".into(),
    })?;
    let name = rest[..open].trim().to_string();
    let params = rest[open + 1..]
        .strip_suffix(')')
        .ok_or_else(|| TextError {
            line: hline,
            message: "expected `)`".into(),
        })?;

    let mut proc_ = Proc::new(name);
    let mut by_name: HashMap<String, VarId> = HashMap::new();
    for part in params.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let (pname, sort) = part.split_once(':').ok_or_else(|| TextError {
            line: hline,
            message: format!("bad input `{part}`"),
        })?;
        let pname = pname.trim();
        let sort = parse_sort(sort.trim(), hline)?;
        let kind = if sort == Sort::Mem {
            InputKind::Memory
        } else if pname.starts_with("call_ret") {
            InputKind::CallResult
        } else {
            InputKind::Register
        };
        let id = proc_.declare(pname, sort, Some(kind));
        by_name.insert(pname.to_string(), id);
    }

    for (i, raw) in lines {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let (dst, rhs) = line.split_once('=').ok_or_else(|| TextError {
            line: line_no,
            message: "expected `=`".into(),
        })?;
        let dst = dst.trim().to_string();
        let rhs = rhs.trim();
        // Split `OpName(params)(arg, arg)` — the argument list is the last
        // parenthesized group.
        let args_open = rhs.rfind('(').ok_or_else(|| TextError {
            line: line_no,
            message: "expected `(`".into(),
        })?;
        let op_text = rhs[..args_open].trim();
        let args_text = rhs[args_open + 1..]
            .strip_suffix(')')
            .ok_or_else(|| TextError {
                line: line_no,
                message: "expected `)`".into(),
            })?;
        let op = parse_op(op_text, line_no)?;
        let mut args = Vec::new();
        for a in args_text
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
        {
            if let Some(id) = by_name.get(a) {
                args.push(Operand::Var(*id));
            } else if let Some((value, sort)) = a.split_once(':') {
                let value = value.trim();
                let value = value
                    .strip_prefix("0x")
                    .and_then(|h| u64::from_str_radix(h, 16).ok())
                    .or_else(|| value.parse::<u64>().ok())
                    .ok_or_else(|| TextError {
                        line: line_no,
                        message: format!("bad constant `{a}`"),
                    })?;
                match parse_sort(sort.trim(), line_no)? {
                    Sort::Bv(width) => args.push(Operand::Const { value, width }),
                    Sort::Mem => return err(line_no, "memory constants do not exist"),
                }
            } else {
                return err(line_no, format!("unknown operand `{a}`"));
            }
        }
        let sorts: Vec<Sort> = args.iter().map(|a| proc_.operand_sort(a)).collect();
        let sort = result_sort(op, &sorts, line_no)?;
        let id = proc_.declare(dst.clone(), sort, None);
        by_name.insert(dst, id);
        proc_.assign(id, op, args);
    }
    Ok(proc_)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lift;
    use esh_asm::parse_proc;

    fn lift_text(text: &str) -> Proc {
        let p = parse_proc(&format!("proc t\nentry:\n{text}")).expect("parses");
        lift("t", &p.blocks[0].insts)
    }

    #[test]
    fn roundtrip_simple() {
        let p = lift_text("lea r14d, [r12+0x13]\nshr r14, 0x2");
        let text = proc_to_text(&p);
        let back = parse_proc_text(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert!(back.validate().is_empty(), "{:?}", back.validate());
        assert_eq!(proc_to_text(&back), text, "round-trip must be stable");
    }

    #[test]
    fn roundtrip_memory_and_flags() {
        let p = lift_text(
            "mov qword ptr [rdi+0x8], rsi\nmov rax, qword ptr [rdi+0x8]\ncmp rax, rsi\n\
             jle done",
        );
        let text = proc_to_text(&p);
        let back = parse_proc_text(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(proc_to_text(&back), text);
        // Behaviour matches too (compared by variable name: the parsed
        // form declares all inputs first, so raw indices differ).
        use crate::eval::{default_inputs, eval_proc};
        let v1 = eval_proc(&p, &default_inputs(&p, 5));
        let v2 = eval_proc(&back, &default_inputs(&back, 5));
        for (i, var) in p.vars.iter().enumerate() {
            let j = back
                .vars
                .iter()
                .position(|v| v.name == var.name)
                .expect("same variable names");
            assert_eq!(v1[i], v2[j], "value of `{}` diverged", var.name);
        }
    }

    #[test]
    fn roundtrip_every_demo_strand() {
        use esh_cc::{Compiler, Vendor, VendorVersion};
        use esh_minic::demo;
        use esh_strands::extract_proc_strands;
        let cc = Compiler::new(Vendor::Icc, VendorVersion::new(14, 0));
        for (_, f) in demo::cve_functions() {
            let proc_ = cc.compile_function(&f);
            for s in extract_proc_strands(&proc_) {
                let lifted = crate::lift("s", &s.insts);
                let text = proc_to_text(&lifted);
                let back = parse_proc_text(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
                assert_eq!(proc_to_text(&back), text);
                assert!(back.validate().is_empty());
            }
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_proc_text("").is_err());
        assert!(parse_proc_text("nope").is_err());
        assert!(parse_proc_text("proc x(a: bv64)\n  v1 = Frob(a)").is_err());
        assert!(parse_proc_text("proc x(a: bv64)\n  v1 = Add(a, ghost)").is_err());
        assert!(parse_proc_text("proc x(a: bv99)").is_err());
    }

    #[test]
    fn parses_handwritten_figure3_style() {
        let text = "proc fig3(r12_in1: bv64)\n  \
                    v1 = Add(r12_in1, 0x13:bv64)\n  \
                    v2 = Extract(31, 0)(v1)\n  \
                    v3 = Zext(64)(v2)\n";
        let p = parse_proc_text(text).expect("parses");
        assert!(p.validate().is_empty());
        assert_eq!(p.inputs().len(), 1);
        assert_eq!(p.temps().len(), 3);
    }
}
