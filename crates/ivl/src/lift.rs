//! Lifting x86-64 instruction sequences (strands) into IVL.
//!
//! Follows the paper's lifting conventions (§2, Figure 3): a fresh
//! temporary for every intermediate value, full 64-bit register
//! representation with sub-register access via extract/concat, SSA memory,
//! and calls treated as uninterpreted (result and memory havoced, §4.2
//! "Procedure calls"). Flag-consuming instructions are lifted through flag
//! *thunks*: the condition is re-expressed as a direct comparison of the
//! flag-producing operands, exactly what a human verifier would write.

use esh_asm::{Cond, Inst, Mem, Reg64, ShiftAmount, Width};

use crate::ast::{InputKind, Op, Operand, Proc, Sort, VarId};

#[derive(Debug, Clone, Copy)]
enum FlagKind {
    /// Flags from `cmp a, b` or `sub`.
    Sub,
    /// Flags from `test`/`and`/`or`/`xor` — CF = OF = 0.
    Logic,
    /// Flags from `add`/`inc` (CF = carry out).
    Add,
}

#[derive(Debug, Clone, Copy)]
struct FlagDef {
    kind: FlagKind,
    a: Operand,
    b: Operand,
    result: Operand,
    width: u32,
}

struct Lifter {
    proc_: Proc,
    regs: [Option<VarId>; 16],
    mem: Option<VarId>,
    flags: Option<FlagDef>,
    flags_consumed: bool,
    temp_count: usize,
    input_count: usize,
    /// Stack-slot abstraction: 64-bit accesses through a frame register
    /// (`rsp`/`rbp`) at a constant displacement are modelled as scalar
    /// variables keyed by `(base value, displacement)` — the same stack
    /// recovery real binary-analysis front-ends (IDA, BAP) perform.
    /// Without it, spill/reload traffic at vendor-specific frame offsets
    /// would be semantically unmatchable across compilers.
    stack_slots: std::collections::HashMap<(VarId, i64), VarId>,
}

fn bits(w: Width) -> u32 {
    w.bits()
}

impl Lifter {
    fn new(name: &str) -> Lifter {
        Lifter {
            proc_: Proc::new(name),
            regs: [None; 16],
            mem: None,
            flags: None,
            flags_consumed: false,
            temp_count: 0,
            input_count: 0,
            stack_slots: std::collections::HashMap::new(),
        }
    }

    /// Returns the slot key when `m` is a frame-slot access: a 64-bit,
    /// index-free reference off `rsp`/`rbp`.
    fn stack_slot_key(&mut self, m: &Mem) -> Option<(VarId, i64)> {
        if m.width != Width::W64 || m.index.is_some() {
            return None;
        }
        let base = m.base?;
        if base != Reg64::Rsp && base != Reg64::Rbp {
            return None;
        }
        let Operand::Var(base_var) = self.reg64(base) else {
            return None;
        };
        Some((base_var, m.disp))
    }

    fn read_stack_slot(&mut self, key: (VarId, i64)) -> Operand {
        match self.stack_slots.get(&key) {
            Some(v) => Operand::Var(*v),
            None => {
                self.input_count += 1;
                let id = self.proc_.declare(
                    format!("slot{}_in{}", key.1, self.input_count),
                    Sort::Bv(64),
                    Some(InputKind::Register),
                );
                self.stack_slots.insert(key, id);
                Operand::Var(id)
            }
        }
    }

    fn write_stack_slot(&mut self, key: (VarId, i64), value: Operand) {
        let id = match value {
            Operand::Var(v) => v,
            c @ Operand::Const { .. } => {
                let Operand::Var(v) = self.emit(Op::Copy, vec![c], 64) else {
                    unreachable!()
                };
                v
            }
        };
        self.stack_slots.insert(key, id);
    }

    fn fresh_temp(&mut self, width: u32) -> VarId {
        self.temp_count += 1;
        self.proc_
            .declare(format!("v{}", self.temp_count), Sort::Bv(width), None)
    }

    fn emit(&mut self, op: Op, args: Vec<Operand>, width: u32) -> Operand {
        let dst = self.fresh_temp(width);
        self.proc_.assign(dst, op, args);
        Operand::Var(dst)
    }

    fn reg_input(&mut self, r: Reg64) -> VarId {
        self.input_count += 1;
        let id = self.proc_.declare(
            format!("{}_in{}", r.name(), self.input_count),
            Sort::Bv(64),
            Some(InputKind::Register),
        );
        id
    }

    /// The current 64-bit value of `r`, creating an input on first read.
    fn reg64(&mut self, r: Reg64) -> Operand {
        match self.regs[r.index()] {
            Some(v) => Operand::Var(v),
            None => {
                let id = self.reg_input(r);
                self.regs[r.index()] = Some(id);
                Operand::Var(id)
            }
        }
    }

    /// Reads `r` at `width` bits (emits an extract for sub-registers).
    fn read_reg(&mut self, r: Reg64, width: Width) -> Operand {
        let full = self.reg64(r);
        match width {
            Width::W64 => full,
            w => self.emit(Op::Extract(bits(w) - 1, 0), vec![full], bits(w)),
        }
    }

    /// Writes `value` (of `width` bits) into `r`, with x86 merge semantics.
    fn write_reg(&mut self, r: Reg64, width: Width, value: Operand) {
        let new64 = match width {
            Width::W64 => value,
            Width::W32 => self.emit(Op::Zext(64), vec![value], 64),
            w => {
                let old = self.reg64(r);
                let hi = self.emit(Op::Extract(63, bits(w)), vec![old], 64 - bits(w));
                self.emit(Op::Concat, vec![hi, value], 64)
            }
        };
        let id = match new64 {
            Operand::Var(v) => v,
            c @ Operand::Const { .. } => {
                // Keep the register map var-backed.
                let Operand::Var(v) = self.emit(Op::Copy, vec![c], 64) else {
                    unreachable!()
                };
                v
            }
        };
        self.regs[r.index()] = Some(id);
    }

    fn mem_var(&mut self) -> Operand {
        match self.mem {
            Some(v) => Operand::Var(v),
            None => {
                self.input_count += 1;
                let id = self.proc_.declare(
                    format!("mem_in{}", self.input_count),
                    Sort::Mem,
                    Some(InputKind::Memory),
                );
                self.mem = Some(id);
                Operand::Var(id)
            }
        }
    }

    /// Computes the effective address of `m` as a 64-bit temp chain.
    fn effective_addr(&mut self, m: &Mem) -> Operand {
        let mut acc: Option<Operand> = m.base.map(|b| self.reg64(b));
        if let Some((idx, scale)) = m.index {
            let mut iv = self.reg64(idx);
            if scale.factor() > 1 {
                iv = self.emit(Op::Mul, vec![iv, Operand::c64(scale.factor())], 64);
            }
            acc = Some(match acc {
                Some(a) => self.emit(Op::Add, vec![a, iv], 64),
                None => iv,
            });
        }
        let disp = m.disp as u64;
        match (acc, disp) {
            (Some(a), 0) => a,
            (Some(a), d) => self.emit(Op::Add, vec![a, Operand::c64(d)], 64),
            (None, d) => self.emit(Op::Copy, vec![Operand::c64(d)], 64),
        }
    }

    /// Reads an operand at the width implied by the instruction context.
    fn read_operand(&mut self, op: &esh_asm::Operand, ctx: Width) -> Operand {
        match op {
            esh_asm::Operand::Reg(r) => self.read_reg(r.base, r.width),
            esh_asm::Operand::Imm(i) => Operand::Const {
                value: (*i as u64) & ctx.mask(),
                width: bits(ctx),
            },
            esh_asm::Operand::Mem(m) => {
                if let Some(key) = self.stack_slot_key(m) {
                    return self.read_stack_slot(key);
                }
                let addr = self.effective_addr(m);
                let mem = self.mem_var();
                self.emit(Op::Load(bits(m.width)), vec![mem, addr], bits(m.width))
            }
        }
    }

    fn write_operand(&mut self, op: &esh_asm::Operand, width: Width, value: Operand) {
        match op {
            esh_asm::Operand::Reg(r) => self.write_reg(r.base, width, value),
            esh_asm::Operand::Mem(m) => {
                if let Some(key) = self.stack_slot_key(m) {
                    self.write_stack_slot(key, value);
                    return;
                }
                let addr = self.effective_addr(m);
                let mem = self.mem_var();
                let new_mem = self.emit(Op::Store(bits(m.width)), vec![mem, addr, value], 0);
                // Store's result is Mem-sorted; patch the declared sort.
                if let Operand::Var(v) = new_mem {
                    self.proc_.vars[v.index()].sort = Sort::Mem;
                    self.mem = Some(v);
                }
            }
            esh_asm::Operand::Imm(_) => panic!("write to immediate"),
        }
    }

    fn op_width(a: &esh_asm::Operand, b: Option<&esh_asm::Operand>) -> Width {
        a.width()
            .or_else(|| b.and_then(|o| o.width()))
            .unwrap_or(Width::W64)
    }

    fn set_flags(&mut self, kind: FlagKind, a: Operand, b: Operand, result: Operand, width: u32) {
        self.flags = Some(FlagDef {
            kind,
            a,
            b,
            result,
            width,
        });
        self.flags_consumed = false;
    }

    /// Lifts the truth value of condition `c` from the current flag thunk.
    fn cond_value(&mut self, c: Cond) -> Operand {
        self.flags_consumed = true;
        let Some(fd) = self.flags else {
            // No flag definition in the strand: the condition depends on
            // severed state, so it becomes an unconstrained input bit.
            self.input_count += 1;
            let id = self.proc_.declare(
                format!("flags_in{}", self.input_count),
                Sort::Bv(1),
                Some(InputKind::Register),
            );
            return Operand::Var(id);
        };
        let w = fd.width;
        let zero = Operand::Const { value: 0, width: w };
        let (a, b, r) = (fd.a, fd.b, fd.result);
        let bool1 = |me: &mut Self, op: Op, x: Operand, y: Operand| me.emit(op, vec![x, y], 1);
        match fd.kind {
            FlagKind::Sub => match c {
                Cond::E => bool1(self, Op::Eq, a, b),
                Cond::Ne => bool1(self, Op::Ne, a, b),
                Cond::L => bool1(self, Op::Slt, a, b),
                Cond::Le => bool1(self, Op::Sle, a, b),
                Cond::G => bool1(self, Op::Slt, b, a),
                Cond::Ge => bool1(self, Op::Sle, b, a),
                Cond::B => bool1(self, Op::Ult, a, b),
                Cond::Be => bool1(self, Op::Ule, a, b),
                Cond::A => bool1(self, Op::Ult, b, a),
                Cond::Ae => bool1(self, Op::Ule, b, a),
                Cond::S => bool1(self, Op::Slt, r, zero),
                Cond::Ns => bool1(self, Op::Sle, zero, r),
            },
            FlagKind::Logic => match c {
                Cond::E | Cond::Be => bool1(self, Op::Eq, r, zero),
                Cond::Ne | Cond::A => bool1(self, Op::Ne, r, zero),
                Cond::S | Cond::L => bool1(self, Op::Slt, r, zero),
                Cond::Ns | Cond::Ge => bool1(self, Op::Sle, zero, r),
                Cond::Le => bool1(self, Op::Sle, r, zero),
                Cond::G => bool1(self, Op::Slt, zero, r),
                Cond::B => Operand::Const { value: 0, width: 1 },
                Cond::Ae => Operand::Const { value: 1, width: 1 },
            },
            FlagKind::Add => match c {
                Cond::E => bool1(self, Op::Eq, r, zero),
                Cond::Ne => bool1(self, Op::Ne, r, zero),
                Cond::S => bool1(self, Op::Slt, r, zero),
                Cond::Ns => bool1(self, Op::Sle, zero, r),
                // CF after add: result wrapped below the first addend.
                Cond::B => bool1(self, Op::Ult, r, a),
                Cond::Ae => bool1(self, Op::Ule, a, r),
                // Remaining combinations (overflow-involved after add) are
                // not emitted by the synthetic compilers; lift them as an
                // unconstrained bit rather than failing.
                _ => {
                    self.input_count += 1;
                    let id = self.proc_.declare(
                        format!("flags_in{}", self.input_count),
                        Sort::Bv(1),
                        Some(InputKind::Register),
                    );
                    Operand::Var(id)
                }
            },
        }
    }

    /// Materializes unconsumed flags as output temporaries (cf. the
    /// paper's Figure 4, where `FLAGS[OF]` is an explicit variable).
    fn materialize_flags(&mut self) {
        let Some(fd) = self.flags else { return };
        if self.flags_consumed {
            return;
        }
        let w = fd.width;
        let zero = Operand::Const { value: 0, width: w };
        // ZF and SF exist for every flag kind.
        self.emit(Op::Eq, vec![fd.result, zero], 1);
        self.emit(Op::Slt, vec![fd.result, zero], 1);
        match fd.kind {
            FlagKind::Sub => {
                self.emit(Op::Ult, vec![fd.a, fd.b], 1); // CF
            }
            FlagKind::Add => {
                self.emit(Op::Ult, vec![fd.result, fd.a], 1); // CF
            }
            FlagKind::Logic => {}
        }
    }

    fn binary(&mut self, op: Op, dst: &esh_asm::Operand, src: &esh_asm::Operand, flag: FlagKind) {
        let w = Self::op_width(dst, Some(src));
        let a = self.read_operand(dst, w);
        let b = self.read_operand(src, w);
        let r = self.emit(op, vec![a, b], bits(w));
        self.set_flags(flag, a, b, r, bits(w));
        self.write_operand(dst, w, r);
    }

    fn shift(&mut self, op: Op, dst: &esh_asm::Operand, amount: &ShiftAmount) {
        let w = Self::op_width(dst, None);
        let a = self.read_operand(dst, w);
        let b = match amount {
            ShiftAmount::Imm(i) => Operand::Const {
                value: u64::from(*i),
                width: bits(w),
            },
            ShiftAmount::Cl => {
                let cl = self.read_reg(Reg64::Rcx, Width::W8);
                self.emit(Op::Zext(bits(w)), vec![cl], bits(w))
            }
        };
        let masked = self.emit(
            Op::And,
            vec![
                b,
                Operand::Const {
                    value: if w == Width::W64 { 63 } else { 31 },
                    width: bits(w),
                },
            ],
            bits(w),
        );
        let r = self.emit(op, vec![a, masked], bits(w));
        self.set_flags(FlagKind::Logic, a, b, r, bits(w));
        self.write_operand(dst, w, r);
    }

    fn step(&mut self, inst: &Inst) {
        match inst {
            Inst::Mov { dst, src } => {
                let w = Self::op_width(dst, Some(src));
                let v = self.read_operand(src, w);
                // Materialize a temp for the moved value (paper Figure 3:
                // `v1 = r12`), then store it.
                let t = self.emit(Op::Copy, vec![v], bits(w));
                self.write_operand(dst, w, t);
            }
            Inst::MovZx { dst, src } => {
                let sw = src.width().unwrap_or(Width::W8);
                let v = self.read_operand(src, sw);
                let t = self.emit(Op::Zext(bits(dst.width)), vec![v], bits(dst.width));
                self.write_reg(dst.base, dst.width, t);
            }
            Inst::MovSx { dst, src } => {
                let sw = src.width().unwrap_or(Width::W8);
                let v = self.read_operand(src, sw);
                let t = self.emit(Op::Sext(bits(dst.width)), vec![v], bits(dst.width));
                self.write_reg(dst.base, dst.width, t);
            }
            Inst::Lea { dst, addr } => {
                let a = self.effective_addr(addr);
                // Ensure a fresh temp represents the lea result.
                let t = self.emit(Op::Copy, vec![a], 64);
                let t = match dst.width {
                    Width::W64 => t,
                    w => self.emit(Op::Extract(bits(w) - 1, 0), vec![t], bits(w)),
                };
                self.write_reg(dst.base, dst.width, t);
            }
            Inst::Add { dst, src } => self.binary(Op::Add, dst, src, FlagKind::Add),
            Inst::Sub { dst, src } => self.binary(Op::Sub, dst, src, FlagKind::Sub),
            Inst::And { dst, src } => self.binary(Op::And, dst, src, FlagKind::Logic),
            Inst::Or { dst, src } => self.binary(Op::Or, dst, src, FlagKind::Logic),
            Inst::Xor { dst, src } => {
                // xor r, r is the zero idiom: lift as a constant.
                if let (esh_asm::Operand::Reg(a), esh_asm::Operand::Reg(b)) = (dst, src) {
                    if a == b {
                        let w = a.width;
                        let z = Operand::Const {
                            value: 0,
                            width: bits(w),
                        };
                        let t = self.emit(Op::Copy, vec![z], bits(w));
                        self.set_flags(FlagKind::Logic, z, z, t, bits(w));
                        self.write_reg(a.base, w, t);
                        return;
                    }
                }
                self.binary(Op::Xor, dst, src, FlagKind::Logic)
            }
            Inst::Imul { dst, src } => {
                let w = dst.width;
                let a = self.read_reg(dst.base, w);
                let b = self.read_operand(src, w);
                let r = self.emit(Op::Mul, vec![a, b], bits(w));
                self.set_flags(FlagKind::Logic, a, b, r, bits(w));
                self.write_reg(dst.base, w, r);
            }
            Inst::ImulImm { dst, src, imm } => {
                let w = dst.width;
                let a = self.read_operand(src, w);
                let b = Operand::Const {
                    value: (*imm as u64) & w.mask(),
                    width: bits(w),
                };
                let r = self.emit(Op::Mul, vec![a, b], bits(w));
                self.set_flags(FlagKind::Logic, a, b, r, bits(w));
                self.write_reg(dst.base, w, r);
            }
            Inst::Neg { dst } => {
                let w = Self::op_width(dst, None);
                let a = self.read_operand(dst, w);
                let r = self.emit(Op::Neg, vec![a], bits(w));
                let zero = Operand::Const {
                    value: 0,
                    width: bits(w),
                };
                self.set_flags(FlagKind::Sub, zero, a, r, bits(w));
                self.write_operand(dst, w, r);
            }
            Inst::Not { dst } => {
                let w = Self::op_width(dst, None);
                let a = self.read_operand(dst, w);
                let r = self.emit(Op::Not, vec![a], bits(w));
                self.write_operand(dst, w, r);
            }
            Inst::Inc { dst } => {
                let w = Self::op_width(dst, None);
                let a = self.read_operand(dst, w);
                let one = Operand::Const {
                    value: 1,
                    width: bits(w),
                };
                let r = self.emit(Op::Add, vec![a, one], bits(w));
                self.set_flags(FlagKind::Add, a, one, r, bits(w));
                self.write_operand(dst, w, r);
            }
            Inst::Dec { dst } => {
                let w = Self::op_width(dst, None);
                let a = self.read_operand(dst, w);
                let one = Operand::Const {
                    value: 1,
                    width: bits(w),
                };
                let r = self.emit(Op::Sub, vec![a, one], bits(w));
                self.set_flags(FlagKind::Sub, a, one, r, bits(w));
                self.write_operand(dst, w, r);
            }
            Inst::Shl { dst, amount } => self.shift(Op::Shl, dst, amount),
            Inst::Shr { dst, amount } => self.shift(Op::LShr, dst, amount),
            Inst::Sar { dst, amount } => self.shift(Op::AShr, dst, amount),
            Inst::Cmp { a, b } => {
                let w = Self::op_width(a, Some(b));
                let x = self.read_operand(a, w);
                let y = self.read_operand(b, w);
                let r = self.emit(Op::Sub, vec![x, y], bits(w));
                self.set_flags(FlagKind::Sub, x, y, r, bits(w));
            }
            Inst::Test { a, b } => {
                let w = Self::op_width(a, Some(b));
                let x = self.read_operand(a, w);
                let y = self.read_operand(b, w);
                let r = self.emit(Op::And, vec![x, y], bits(w));
                self.set_flags(FlagKind::Logic, x, y, r, bits(w));
            }
            Inst::Set { cond, dst } => {
                let c = self.cond_value(*cond);
                let byte = self.emit(Op::Zext(8), vec![c], 8);
                self.write_operand(dst, Width::W8, byte);
            }
            Inst::Cmov { cond, dst, src } => {
                let c = self.cond_value(*cond);
                let old = self.read_reg(dst.base, dst.width);
                let new = self.read_operand(src, dst.width);
                let r = self.emit(Op::Ite, vec![c, new, old], bits(dst.width));
                self.write_reg(dst.base, dst.width, r);
            }
            Inst::Jcc { cond, .. } => {
                // The would-branch bit becomes an explicit output value
                // (materialized even when the condition is an
                // unconstrained input, so it survives input pruning).
                let c = self.cond_value(*cond);
                if matches!(c, Operand::Var(v) if self.proc_.var(v).input.is_some()) {
                    self.emit(Op::Copy, vec![c], 1);
                }
            }
            Inst::Jmp { .. } | Inst::Nop => {}
            Inst::Push { src } => {
                // Stack traffic goes through the slot abstraction (keyed
                // by the post-decrement rsp value), keeping program memory
                // unpolluted by prologue spills — matching the stack
                // recovery of real binary front-ends.
                let v = self.read_operand(src, Width::W64);
                let sp = self.reg64(Reg64::Rsp);
                let nsp = self.emit(Op::Sub, vec![sp, Operand::c64(8)], 64);
                self.write_reg(Reg64::Rsp, Width::W64, nsp);
                if let Operand::Var(spv) = nsp {
                    self.write_stack_slot((spv, 0), v);
                }
            }
            Inst::Pop { dst } => {
                let sp = self.reg64(Reg64::Rsp);
                let v = match sp {
                    Operand::Var(spv) => self.read_stack_slot((spv, 0)),
                    c @ Operand::Const { .. } => c,
                };
                let nsp = self.emit(Op::Add, vec![sp, Operand::c64(8)], 64);
                self.write_reg(Reg64::Rsp, Width::W64, nsp);
                self.write_operand(dst, Width::W64, v);
            }
            Inst::Call { .. } => {
                // Uninterpreted call (§4.2): the return register and the
                // memory become fresh inputs; caller-saved registers are
                // forgotten (reads after the call see fresh inputs).
                self.input_count += 1;
                let ret = self.proc_.declare(
                    format!("call_ret{}", self.input_count),
                    Sort::Bv(64),
                    Some(InputKind::CallResult),
                );
                for r in esh_asm::CALLER_SAVED {
                    self.regs[r.index()] = None;
                }
                self.regs[Reg64::Rax.index()] = Some(ret);
                self.input_count += 1;
                let hm = self.proc_.declare(
                    format!("mem_in{}", self.input_count),
                    Sort::Mem,
                    Some(InputKind::Memory),
                );
                self.mem = Some(hm);
                self.flags = None;
            }
            Inst::Ret => {
                // Capture the returned value as an output temp.
                let rax = self.reg64(Reg64::Rax);
                let _ = self.emit(Op::Copy, vec![rax], 64);
            }
            Inst::Cdqe => {
                let lo = self.read_reg(Reg64::Rax, Width::W32);
                let t = self.emit(Op::Sext(64), vec![lo], 64);
                self.write_reg(Reg64::Rax, Width::W64, t);
            }
        }
    }
}

/// Lifts an instruction sequence (a strand or a whole basic block) into a
/// non-branching IVL procedure.
///
/// ```
/// use esh_asm::parse_inst;
/// use esh_ivl::lift;
///
/// let insts = vec![
///     parse_inst("mov r13, rax").unwrap(),
///     parse_inst("lea rcx, [r13+0x3]").unwrap(),
/// ];
/// let p = lift("strand", &insts);
/// assert!(p.validate().is_empty());
/// assert!(!p.inputs().is_empty());
/// ```
pub fn lift(name: &str, insts: &[Inst]) -> Proc {
    let mut l = Lifter::new(name);
    for i in insts {
        l.step(i);
    }
    l.materialize_flags();
    prune_dead_inputs(l.proc_)
}

/// Removes input variables no statement references. Saved callee-saved
/// registers (prologue pushes) whose values are never reloaded within the
/// strand would otherwise inflate the input set and make total input
/// correspondences (paper Definition 1) infeasible against strands that
/// save fewer registers.
fn prune_dead_inputs(p: Proc) -> Proc {
    let mut used = vec![false; p.vars.len()];
    for s in &p.stmts {
        used[s.dst.index()] = true;
        for a in &s.args {
            if let crate::ast::Operand::Var(v) = a {
                used[v.index()] = true;
            }
        }
    }
    if used.iter().all(|u| *u) {
        return p;
    }
    let mut remap: Vec<Option<VarId>> = vec![None; p.vars.len()];
    let mut out = Proc::new(p.name.clone());
    for (i, v) in p.vars.iter().enumerate() {
        if used[i] {
            let id = out.declare(v.name.clone(), v.sort, v.input);
            remap[i] = Some(id);
        }
    }
    for s in &p.stmts {
        let dst = remap[s.dst.index()].expect("dst is used");
        let args = s
            .args
            .iter()
            .map(|a| match a {
                crate::ast::Operand::Var(v) => {
                    crate::ast::Operand::Var(remap[v.index()].expect("arg is used"))
                }
                c => *c,
            })
            .collect();
        out.assign(dst, s.op, args);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use esh_asm::parse_proc;

    fn lift_text(text: &str) -> Proc {
        let p = parse_proc(&format!("proc t\nentry:\n{text}")).expect("parses");
        let insts: Vec<Inst> = p.blocks[0].insts.clone();
        lift("t", &insts)
    }

    #[test]
    fn lifting_is_ssa_and_well_sorted() {
        let cases = [
            "mov r13, rax\nlea rcx, [r13+0x3]",
            "mov eax, r12d\nshr eax, 0x8",
            "mov byte ptr [r13+0x1], al\nmov byte ptr [r13+0x2], r12b",
            "xor ebx, ebx\ntest eax, eax\njl out",
            "push rbx\npush r12\npop r12\npop rbx",
            "call memcpy/3\nmov rcx, rax",
            "cmp rdi, rsi\nsetle al\nmovzx rax, al",
            "movsx rax, dword ptr [rdi]\ncdqe",
            "mov rax, rdi\nimul rax, rsi\nneg rax\nnot rax",
            "mov rax, rdi\nsar rax, cl",
            "inc rdi\ndec rsi\ncmovne rax, rdi",
        ];
        for c in cases {
            let p = lift_text(c);
            let errs = p.validate();
            assert!(errs.is_empty(), "`{c}`: {errs:?}\n{p}");
        }
    }

    #[test]
    fn paper_figure3_shape() {
        // lea r14d, [r12+13h] from Figure 3: v1 = r12; v2 = 13h + v1;
        // v3 = trunc/zext dance; r14 = v3.
        let p = lift_text("lea r14d, [r12+0x13]");
        assert!(p.validate().is_empty());
        // One register input (r12).
        let inputs = p.inputs();
        assert_eq!(inputs.len(), 1);
        assert!(p.var(inputs[0]).name.starts_with("r12"));
        // At least: add, copy, extract, zext temps.
        assert!(p.temps().len() >= 3, "{p}");
    }

    #[test]
    fn subregister_write_concats() {
        let p = lift_text("mov byte ptr [r13+0x1], al");
        assert!(p.validate().is_empty());
        // Uses a load-free store: inputs are r13, rax (for al), and memory.
        let kinds: Vec<Sort> = p.inputs().iter().map(|i| p.var(*i).sort).collect();
        assert!(kinds.contains(&Sort::Mem));
        assert_eq!(kinds.iter().filter(|s| **s == Sort::Bv(64)).count(), 2);
    }

    #[test]
    fn flag_thunk_lifts_branch_condition() {
        let p = lift_text("cmp rdi, rsi\njl somewhere");
        assert!(p.validate().is_empty());
        // The branch becomes a bv1 temp computed by Slt.
        assert!(
            p.stmts.iter().any(|s| s.op == Op::Slt),
            "expected an Slt for jl: {p}"
        );
    }

    #[test]
    fn unconsumed_flags_materialize() {
        let p = lift_text("cmp rdi, rsi");
        assert!(p.validate().is_empty());
        // zf, sf, cf appear as bv1 temps.
        let bools = p
            .temps()
            .iter()
            .filter(|t| p.var(**t).sort == Sort::Bv(1))
            .count();
        assert_eq!(bools, 3, "{p}");
    }

    #[test]
    fn call_havocs_memory_and_result() {
        let p = lift_text("mov rdi, rbx\ncall memcpy/3\nmov rcx, rax\nmov rdx, r10");
        assert!(p.validate().is_empty());
        let has_callret = p
            .inputs()
            .iter()
            .any(|i| p.var(*i).input == Some(InputKind::CallResult));
        assert!(has_callret, "{p}");
        // r10 read after the call is a fresh input, not the pre-call value.
        let r10_inputs = p
            .inputs()
            .iter()
            .filter(|i| p.var(**i).name.starts_with("r10"))
            .count();
        assert_eq!(r10_inputs, 1);
    }

    #[test]
    fn xor_zero_idiom_is_constant() {
        let p = lift_text("xor ebx, ebx");
        assert!(p.validate().is_empty());
        // No input needed: the value is the constant 0.
        assert!(p.inputs().is_empty(), "{p}");
    }

    #[test]
    fn branch_without_flag_def_becomes_input() {
        let p = lift_text("jl somewhere");
        assert!(p.validate().is_empty());
        assert_eq!(p.inputs().len(), 1);
        assert_eq!(p.var(p.inputs()[0]).sort, Sort::Bv(1));
    }
}
