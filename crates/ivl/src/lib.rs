#![warn(missing_docs)]

//! # esh-ivl — the intermediate verification language and lifter
//!
//! The paper lifts binary procedures through BAP → LLVM IR → SMACK →
//! BoogieIVL (§5.1.1). This crate replaces that stack with a direct lifter
//! from the `esh-asm` instruction model into a flat, non-branching SSA IVL
//! with the same invariants the paper relies on:
//!
//! * a fresh temporary for every intermediate value,
//! * full 64-bit register representation (sub-register access is explicit
//!   extract/concat),
//! * SSA memory threaded through `store` operations, and
//! * uninterpreted (havoced) procedure calls.
//!
//! [`eval`] provides concrete evaluation for semantic hashing and fast
//! refutation.
//!
//! ```
//! use esh_asm::parse_inst;
//! use esh_ivl::{eval, lift};
//!
//! let insts = vec![parse_inst("lea r14d, [r12+0x13]").unwrap()];
//! let p = lift("s", &insts);
//! assert!(p.validate().is_empty());
//! let vals = eval::eval_proc(&p, &eval::default_inputs(&p, 1));
//! assert_eq!(vals.len(), p.vars.len());
//! ```

mod ast;
pub mod eval;
mod lift;
pub mod text;

pub use ast::{InputKind, Op, Operand, Proc, Sort, Stmt, Var, VarId};
pub use lift::lift;
pub use text::{parse_proc_text, proc_to_text, TextError};
