//! Strand extraction — the paper's Algorithm 1.
//!
//! A *strand* is the set of instructions in one basic block needed to
//! compute a certain variable's value (a basic-block-level backward slice).
//! Blocks are sliced until every instruction is covered; the inputs of a
//! strand are the locations it reads before defining.

use esh_asm::{BasicBlock, Inst, Loc, Procedure};
use serde::{Deserialize, Serialize};

/// One extracted strand.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Strand {
    /// Label of the source basic block.
    pub block: String,
    /// Indices of the strand's instructions within the block, ascending.
    pub indices: Vec<usize>,
    /// The instructions, in program order.
    pub insts: Vec<Inst>,
    /// Locations used before being defined (the strand's inputs).
    pub inputs: Vec<Loc>,
}

impl Strand {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the strand has no instructions (never produced by
    /// extraction; exists for container completeness).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// Extracts all strands from one basic block (paper Algorithm 1).
///
/// The backward iteration from the *last* unused instruction minimizes the
/// number of strands, exactly as the paper notes.
pub fn extract_block_strands(block: &BasicBlock) -> Vec<Strand> {
    let n = block.insts.len();
    let mut unused: Vec<bool> = vec![true; n];
    let mut strands = Vec::new();
    // maxUsed ← max(unusedInsts)
    while let Some(max_used) = (0..n).rev().find(|i| unused[*i]) {
        unused[max_used] = false;
        let mut member = vec![false; n];
        member[max_used] = true;
        let mut vars_refed: Vec<Loc> = block.insts[max_used].refs();
        let mut vars_defed: Vec<Loc> = block.insts[max_used].defs();
        for i in (0..max_used).rev() {
            let defs = block.insts[i].defs();
            let needed: Vec<Loc> = defs
                .iter()
                .filter(|d| vars_refed.contains(d))
                .copied()
                .collect();
            if !needed.is_empty() {
                member[i] = true;
                for r in block.insts[i].refs() {
                    if !vars_refed.contains(&r) {
                        vars_refed.push(r);
                    }
                }
                for d in needed {
                    if !vars_defed.contains(&d) {
                        vars_defed.push(d);
                    }
                }
                unused[i] = false;
            }
        }
        let indices: Vec<usize> = (0..n).filter(|i| member[*i]).collect();
        let insts: Vec<Inst> = indices.iter().map(|i| block.insts[*i].clone()).collect();
        let inputs: Vec<Loc> = vars_refed
            .iter()
            .filter(|r| !vars_defed.contains(r))
            .copied()
            .collect();
        strands.push(Strand {
            block: block.label.clone(),
            indices,
            insts,
            inputs,
        });
    }
    strands
}

/// Extracts the strands of every basic block of `proc_`.
pub fn extract_proc_strands(proc_: &Procedure) -> Vec<Strand> {
    proc_
        .blocks
        .iter()
        .flat_map(extract_block_strands)
        .collect()
}

/// Summary statistics in the shape of the paper's Table 1 (`#BB`,
/// `#Strands`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StrandStats {
    /// Number of basic blocks.
    pub basic_blocks: usize,
    /// Number of extracted strands.
    pub strands: usize,
    /// Total instructions.
    pub insts: usize,
}

/// Computes [`StrandStats`] for a procedure.
pub fn strand_stats(proc_: &Procedure) -> StrandStats {
    StrandStats {
        basic_blocks: proc_.blocks.len(),
        strands: extract_proc_strands(proc_).len(),
        insts: proc_.inst_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esh_asm::parse_proc;

    fn block_of(text: &str) -> BasicBlock {
        parse_proc(&format!("proc t\nentry:\n{text}"))
            .expect("parses")
            .blocks[0]
            .clone()
    }

    #[test]
    fn every_instruction_is_covered() {
        let b = block_of(
            "lea r14d, [r12+0x13]\nmov r13, rax\nmov eax, r12d\nlea rcx, [r13+0x3]\n\
             shr eax, 0x8\nlea rsi, [rbx+0x3]\nmov byte ptr [r13+0x1], al\n\
             mov byte ptr [r13+0x2], r12b\nmov rdi, rcx\ncall memcpy/3",
        );
        let strands = extract_block_strands(&b);
        let mut covered = vec![false; b.insts.len()];
        for s in &strands {
            for i in &s.indices {
                covered[*i] = true;
            }
        }
        assert!(
            covered.iter().all(|c| *c),
            "uncovered instructions: {covered:?}"
        );
    }

    #[test]
    fn figure1_strand_shapes() {
        // The target code of Figure 1(c): strand ③ is
        // `mov r13, rbx; lea rcx, [r13+3]` — data-dependent, not contiguous.
        let b = block_of(
            "shr eax, 0x8\nlea r14d, [r12+0x13]\nmov r13, rbx\nmov byte ptr [r13+0x1], al\n\
             mov byte ptr [r13+0x2], r12b\nlea rcx, [r13+0x3]\nmov rdi, rcx",
        );
        let strands = extract_block_strands(&b);
        // Find the strand ending at `mov rdi, rcx` (index 6).
        let s = strands
            .iter()
            .find(|s| s.indices.contains(&6))
            .expect("strand exists");
        // It must pull in lea rcx (5) and mov r13, rbx (2), but not shr eax.
        assert!(s.indices.contains(&5));
        assert!(s.indices.contains(&2));
        assert!(!s.indices.contains(&0));
        // Its input is rbx (plus nothing else register-wise).
        assert!(s.inputs.contains(&Loc::reg(esh_asm::Reg64::Rbx)));
    }

    #[test]
    fn independent_computations_become_separate_strands() {
        let b = block_of("mov rax, rdi\nadd rax, 0x1\nmov rbx, rsi\nadd rbx, 0x2");
        let strands = extract_block_strands(&b);
        assert_eq!(strands.len(), 2);
        // Extraction starts from the last unused instruction.
        assert_eq!(strands[0].indices, vec![2, 3]);
        assert_eq!(strands[1].indices, vec![0, 1]);
    }

    #[test]
    fn inputs_are_read_before_def() {
        let b = block_of("mov rax, rdi\nadd rax, rsi");
        let strands = extract_block_strands(&b);
        assert_eq!(strands.len(), 1);
        let inputs = &strands[0].inputs;
        assert!(inputs.contains(&Loc::reg(esh_asm::Reg64::Rdi)));
        assert!(inputs.contains(&Loc::reg(esh_asm::Reg64::Rsi)));
        assert!(!inputs.contains(&Loc::reg(esh_asm::Reg64::Rax)));
    }

    #[test]
    fn flag_dependence_links_cmp_to_jcc() {
        let b = block_of("mov rax, rdi\ncmp rax, rsi\njl somewhere");
        let strands = extract_block_strands(&b);
        assert_eq!(strands.len(), 1, "cmp+jcc+feeding mov form one strand");
        assert_eq!(strands[0].indices, vec![0, 1, 2]);
    }

    #[test]
    fn push_sequences_chain_through_rsp() {
        // The paper (§6.2) observes prologue push sequences form strands.
        let b = block_of("push rbp\npush rbx\npush r12\npush r13");
        let strands = extract_block_strands(&b);
        assert_eq!(strands.len(), 1);
        assert_eq!(strands[0].len(), 4);
    }

    #[test]
    fn proc_stats_count_blocks_and_strands() {
        let p = parse_proc(
            "proc f\nentry:\nmov rax, rdi\ntest rax, rax\nje out\nbody:\nadd rax, 0x1\nout:\nret\n",
        )
        .expect("parses");
        let st = strand_stats(&p);
        assert_eq!(st.basic_blocks, 3);
        assert!(st.strands >= 3);
        assert_eq!(st.insts, 5);
    }
}
