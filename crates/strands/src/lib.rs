#![warn(missing_docs)]

//! # esh-strands — procedure decomposition into strands
//!
//! Implements the paper's §3.2: procedures are decomposed at basic-block
//! boundaries into *strands* (block-level backward slices, Algorithm 1).
//! Also provides the structural/semantic strand hashing used by the
//! similarity engine to deduplicate compiler-replicated strands and to
//! prefilter verifier queries without affecting exactness.
//!
//! # Examples
//!
//! Decompose a parsed procedure into strands:
//!
//! ```
//! use esh_asm::parse_proc;
//! use esh_strands::extract_proc_strands;
//!
//! let p = parse_proc("proc f\nentry:\nmov rax, rdi\nadd rax, 0x1\nret\n")?;
//! let strands = extract_proc_strands(&p);
//! assert!(!strands.is_empty());
//! # Ok::<(), esh_asm::ParseError>(())
//! ```

mod extract;
mod hash;

pub use extract::{extract_block_strands, extract_proc_strands, strand_stats, Strand, StrandStats};
pub use hash::{
    semantic_signature, stable_hash64, stable_mix, structural_hash, Signature,
    SIGNATURE_SEEDS, STABLE_HASH_SEED,
};

use esh_ivl::Proc;

/// Lifts a strand to IVL with a canonical name.
pub fn lift_strand(s: &Strand) -> Proc {
    esh_ivl::lift(
        &format!("{}#{}", s.block, s.indices.first().copied().unwrap_or(0)),
        &s.insts,
    )
}
