//! Structural and semantic strand hashing.
//!
//! * The **structural hash** identifies syntactically identical lifted
//!   strands (up to variable numbering, which is canonical by
//!   construction). It powers corpus-wide deduplication: the compiler
//!   replicates prologue/epilogue strands thousands of times (§5.3 and
//!   §6.2 discuss exactly this), and identical strands need only one VCP
//!   computation.
//!
//! * The **semantic signature** evaluates a lifted strand on a fixed,
//!   *input-uniform* assignment (every bitvector input gets the same
//!   value, every memory input the same image). Uniformity is the key
//!   soundness trick: an input-output equivalence under *any* input
//!   correspondence γ implies matching output values under a uniform
//!   assignment, so signature overlap is a correct upper bound for VCP —
//!   a prefilter that never rejects a true match.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use esh_ivl::eval::{eval_proc, MemImage, Val};
use esh_ivl::{Proc, Sort, VarId};
use serde::{Deserialize, Serialize};

/// Seeds of the uniform assignments used for semantic signatures.
pub const SIGNATURE_SEEDS: [u64; 2] = [0x00c0_ffee, 0x0bad_f00d];

/// Folds one 64-bit word into a running FNV-1a state. The starting state
/// is [`STABLE_HASH_SEED`]; chain calls to hash a sequence.
///
/// Unlike [`structural_hash`] (which rides the standard library's default
/// hasher and is therefore tied to the toolchain that produced it), this
/// is a fixed function: values derived from it — per-class semantic
/// sketches, minhash signatures, LSH band keys — can be persisted in
/// snapshots and compared across builds.
pub fn stable_mix(mut h: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// FNV-1a offset basis — the starting state for [`stable_mix`] chains.
pub const STABLE_HASH_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Stable digest of a word sequence (a [`stable_mix`] fold from
/// [`STABLE_HASH_SEED`]).
pub fn stable_hash64(words: impl IntoIterator<Item = u64>) -> u64 {
    words.into_iter().fold(STABLE_HASH_SEED, stable_mix)
}

/// Structural hash of a lifted strand (op sequence + operand shape).
pub fn structural_hash(p: &Proc) -> u64 {
    let mut h = DefaultHasher::new();
    for v in &p.vars {
        (v.sort, v.input.is_some()).hash(&mut h);
    }
    for s in &p.stmts {
        s.dst.0.hash(&mut h);
        s.op.hash(&mut h);
        for a in &s.args {
            match a {
                esh_ivl::Operand::Var(v) => (0u8, v.0 as u64).hash(&mut h),
                esh_ivl::Operand::Const { value, width } => (1u8, *value, *width).hash(&mut h),
            }
        }
    }
    h.finish()
}

/// The semantic signature of a lifted strand: for each signature seed, the
/// sorted values of all non-input variables under the uniform assignment.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature {
    /// Per-seed sorted output values (memory outputs are hashed to u64).
    pub rounds: Vec<Vec<u64>>,
}

impl Signature {
    /// Upper bound on the fraction of `self`'s values that can be matched
    /// in `other` (per-round minimum).
    pub fn overlap_bound(&self, other: &Signature) -> f64 {
        let mut bound: f64 = 1.0;
        for (a, b) in self.rounds.iter().zip(&other.rounds) {
            if a.is_empty() {
                return 0.0;
            }
            // Both sides are sorted: count multiset intersection.
            let mut i = 0;
            let mut j = 0;
            let mut matched = 0usize;
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        matched += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
            bound = bound.min(matched as f64 / a.len() as f64);
        }
        bound
    }
}

fn uniform_inputs(p: &Proc, seed: u64) -> Vec<(VarId, Val)> {
    let mut z = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    z ^= z >> 31;
    p.inputs()
        .into_iter()
        .map(|id| {
            let v = match p.var(id).sort {
                Sort::Bv(w) => Val::Bv(z & if w >= 64 { u64::MAX } else { (1 << w) - 1 }),
                Sort::Mem => Val::Mem(MemImage::new(seed)),
            };
            (id, v)
        })
        .collect()
}

fn val_digest(v: &Val) -> u64 {
    match v {
        Val::Bv(b) => *b,
        Val::Mem(img) => {
            let mut h = DefaultHasher::new();
            img.seed.hash(&mut h);
            for s in img.stores.iter() {
                s.hash(&mut h);
            }
            h.finish()
        }
    }
}

/// Computes the semantic signature of a lifted strand.
pub fn semantic_signature(p: &Proc) -> Signature {
    let rounds = SIGNATURE_SEEDS
        .iter()
        .map(|seed| {
            let vals = eval_proc(p, &uniform_inputs(p, *seed));
            let mut out: Vec<u64> = p
                .temps()
                .into_iter()
                .map(|t| val_digest(&vals[t.index()]))
                .collect();
            out.sort_unstable();
            out
        })
        .collect();
    Signature { rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esh_asm::parse_proc;
    use esh_ivl::lift;

    fn lift_text(text: &str) -> Proc {
        let p = parse_proc(&format!("proc t\nentry:\n{text}")).expect("parses");
        lift("t", &p.blocks[0].insts)
    }

    #[test]
    fn stable_hash_is_a_fixed_function() {
        // These constants pin the algorithm itself: if they move, every
        // persisted sketch digest silently invalidates.
        assert_eq!(stable_hash64([]), STABLE_HASH_SEED);
        assert_eq!(stable_hash64([0u64]), 0xa8c7_f832_281a_39c5);
        assert_ne!(stable_hash64([1u64, 2]), stable_hash64([2u64, 1]));
        assert_eq!(
            stable_mix(stable_mix(STABLE_HASH_SEED, 7), 9),
            stable_hash64([7u64, 9])
        );
    }

    #[test]
    fn structural_hash_distinguishes_ops() {
        let a = lift_text("mov rax, rdi\nadd rax, 0x1");
        let b = lift_text("mov rax, rdi\nsub rax, 0x1");
        let c = lift_text("mov rax, rdi\nadd rax, 0x1");
        assert_eq!(structural_hash(&a), structural_hash(&c));
        assert_ne!(structural_hash(&a), structural_hash(&b));
    }

    #[test]
    fn renamed_registers_hash_equal() {
        // Same computation through different registers lifts to the same
        // canonical IVL (temp numbering is positional).
        let a = lift_text("mov r13, rbx\nlea rcx, [r13+0x3]");
        let b = lift_text("mov r12, rbx\nlea rdi, [r12+0x3]");
        assert_eq!(structural_hash(&a), structural_hash(&b));
    }

    #[test]
    fn equivalent_strands_have_full_overlap() {
        // Figure 3's pair: equivalent computations, different shapes.
        let q = lift_text("lea r14d, [r12+0x13]\nmov rsi, 0x18\nlea rax, [rsi+r14]");
        let t = lift_text("mov r9, 0x13\nmov rbx, r12\nlea r13d, [rbx+r9]\nadd r9, 0x5\nmov rsi, r9\nlea rax, [rsi+r13]");
        let sq = semantic_signature(&q);
        let st = semantic_signature(&t);
        // Every value computed by q appears in t (VCP(q,t) upper bound 1).
        assert!(
            sq.overlap_bound(&st) > 0.7,
            "bound = {}",
            sq.overlap_bound(&st)
        );
    }

    #[test]
    fn unrelated_strands_have_low_overlap() {
        let q = lift_text("mov rax, rdi\nimul rax, rsi\nxor rax, 0x1234");
        let t = lift_text("mov rbx, rdi\nshr rbx, 0x7\nor rbx, 0x8000");
        let bound = semantic_signature(&q).overlap_bound(&semantic_signature(&t));
        assert!(bound < 0.5, "bound = {bound}");
    }

    #[test]
    fn overlap_is_asymmetric() {
        // q's values ⊂ t's values, but not vice versa.
        let q = lift_text("mov rax, rdi\nadd rax, 0x2");
        let t = lift_text("mov rax, rdi\nadd rax, 0x2\nmov rbx, rdi\nimul rbx, rbx\nxor rbx, rax");
        let sq = semantic_signature(&q);
        let st = semantic_signature(&t);
        assert!(sq.overlap_bound(&st) > st.overlap_bound(&sq));
    }
}
