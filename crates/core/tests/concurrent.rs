//! Concurrency contract of [`SimilarityEngine::query`]: one shared
//! read-only engine serving many threads — the invariant the `esh serve`
//! daemon's worker pool relies on.
//!
//! Two properties are checked: results are deterministic (every thread
//! sees scores bit-identical to a sequential baseline, no matter how the
//! threads interleave on the shared VCP cache and session pool), and the
//! cache hit/miss counters stay consistent under contention (every lookup
//! is counted exactly once, so `hits + misses` equals the known per-query
//! lookup count times the number of queries).

use std::sync::Arc;

use esh_cc::{Compiler, Vendor, VendorVersion};
use esh_core::{EngineConfig, QueryScores, SimilarityEngine};
use esh_minic::demo;

fn build_engine() -> SimilarityEngine {
    let clang = Compiler::new(Vendor::Clang, VendorVersion::new(3, 5));
    let icc = Compiler::new(Vendor::Icc, VendorVersion::new(15, 0));
    let mut engine = SimilarityEngine::new(EngineConfig {
        threads: 2,
        ..EngineConfig::default()
    });
    for (i, f) in [demo::saturating_sum(), demo::wget_like(), demo::heartbleed_like()]
        .iter()
        .enumerate()
    {
        engine.add_target(format!("clang:{i}"), &clang.compile_function(f));
        engine.add_target(format!("icc:{i}"), &icc.compile_function(f));
    }
    engine
}

fn queries() -> Vec<esh_asm::Procedure> {
    let gcc = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9));
    vec![
        gcc.compile_function(&demo::saturating_sum()),
        gcc.compile_function(&demo::wget_like()),
        gcc.compile_function(&demo::heartbleed_like()),
    ]
}

fn assert_bit_identical(a: &QueryScores, b: &QueryScores, ctx: &str) {
    assert_eq!(a.scores.len(), b.scores.len(), "{ctx}");
    for (x, y) in a.scores.iter().zip(&b.scores) {
        assert_eq!(x.target, y.target, "{ctx}: {}", x.name);
        assert_eq!(x.ges.to_bits(), y.ges.to_bits(), "{ctx}: {}", x.name);
        assert_eq!(x.s_log.to_bits(), y.s_log.to_bits(), "{ctx}: {}", x.name);
        assert_eq!(x.s_vcp.to_bits(), y.s_vcp.to_bits(), "{ctx}: {}", x.name);
    }
}

#[test]
fn concurrent_queries_match_sequential_baseline() {
    let procs = queries();

    // Sequential baselines on a private engine.
    let baseline_engine = build_engine();
    let baselines: Vec<QueryScores> =
        procs.iter().map(|p| baseline_engine.query(p)).collect();

    // The same queries, each run from several threads at once against one
    // shared engine, racing on the VCP cache and the session pool.
    let shared = Arc::new(build_engine());
    const REPEATS: usize = 3;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (qi, p) in procs.iter().enumerate() {
            for rep in 0..REPEATS {
                let engine = Arc::clone(&shared);
                handles.push(scope.spawn(move || (qi, rep, engine.query(p))));
            }
        }
        for h in handles {
            let (qi, rep, scores) = h.join().expect("query thread panicked");
            assert_bit_identical(
                &baselines[qi],
                &scores,
                &format!("query {qi} repeat {rep}"),
            );
        }
    });
}

#[test]
fn cache_counters_are_exact_under_contention() {
    let procs = queries();

    // Per-query lookup counts are deterministic: measure them cold, one
    // query per fresh engine (hits + misses = lookups reaching the cache).
    let lookups_per_query: Vec<u64> = procs
        .iter()
        .map(|p| {
            let engine = build_engine();
            engine.query(p);
            let s = engine.cache_stats();
            assert_eq!(s.hits, 0, "a lone cold query cannot hit");
            assert!(s.misses > 0, "a cold query must populate the cache");
            s.hits + s.misses
        })
        .collect();

    let shared = Arc::new(build_engine());
    const REPEATS: usize = 4;
    std::thread::scope(|scope| {
        let handles: Vec<_> = procs
            .iter()
            .flat_map(|p| {
                let shared = &shared;
                (0..REPEATS).map(move |_| {
                    let engine = Arc::clone(shared);
                    scope.spawn(move || {
                        engine.query(p);
                    })
                })
            })
            .collect();
        for h in handles {
            h.join().expect("query thread panicked");
        }
    });

    let stats = shared.cache_stats();
    let expected: u64 = lookups_per_query.iter().sum::<u64>() * REPEATS as u64;
    assert_eq!(
        stats.hits + stats.misses,
        expected,
        "every cache lookup must be counted exactly once under contention"
    );
    // Racing threads may both miss the same key before either inserts, so
    // misses can exceed distinct entries — but never the reverse once the
    // refine-top-K pass's uncounted inserts (tracked by `refined_pairs`)
    // are added back — and the cache must have been exercised hard enough
    // to produce real hits.
    let refined = shared.prefilter_stats().refined_pairs;
    assert!(stats.entries as u64 <= stats.misses + refined);
    assert!(stats.hits > 0, "repeated queries must hit the shared cache");
}
