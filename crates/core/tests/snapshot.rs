//! Integration tests for engine snapshots and the cross-query VCP cache:
//! round-trip fidelity, cache correctness and compatibility rejection.

use esh_cc::{Compiler, Vendor, VendorVersion};
use esh_core::{EngineConfig, SimilarityEngine, SnapshotError, VcpConfig};
use esh_minic::demo;

/// A small multi-vendor corpus plus a query procedure from a different
/// toolchain, exercising real cross-compiler matching.
fn corpus_engine() -> (SimilarityEngine, esh_asm::Procedure) {
    let gcc = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9));
    let clang = Compiler::new(Vendor::Clang, VendorVersion::new(3, 5));
    let icc = Compiler::new(Vendor::Icc, VendorVersion::new(15, 0));

    let config = EngineConfig {
        threads: 2,
        ..EngineConfig::default()
    };
    let mut engine = SimilarityEngine::new(config);
    for (i, f) in [demo::saturating_sum(), demo::wget_like(), demo::ws_snmp_like()]
        .iter()
        .enumerate()
    {
        engine.add_target(format!("clang:{i}"), &clang.compile_function(f));
        engine.add_target(format!("icc:{i}"), &icc.compile_function(f));
    }
    let query = gcc.compile_function(&demo::saturating_sum());
    (engine, query)
}

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("esh-snapshot-test-{name}-{}", std::process::id()))
}

#[test]
fn round_trip_scores_are_bit_identical() {
    let (engine, query) = corpus_engine();
    let path = temp_path("round-trip");
    engine.save(&path).unwrap();
    let reloaded = SimilarityEngine::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(reloaded.target_count(), engine.target_count());
    assert_eq!(reloaded.class_count(), engine.class_count());

    let a = engine.query(&query);
    let b = reloaded.query(&query);
    assert_eq!(a.scores.len(), b.scores.len());
    for (x, y) in a.scores.iter().zip(&b.scores) {
        assert_eq!(x.target, y.target);
        assert_eq!(x.name, y.name);
        assert_eq!(x.ges.to_bits(), y.ges.to_bits(), "{}", x.name);
        assert_eq!(x.s_log.to_bits(), y.s_log.to_bits(), "{}", x.name);
        assert_eq!(x.s_vcp.to_bits(), y.s_vcp.to_bits(), "{}", x.name);
    }
    assert_eq!(a.query_strands, b.query_strands);
    assert_eq!(a.query_strand_occurrences, b.query_strand_occurrences);
}

#[test]
fn warm_query_hits_cache_with_zero_solver_calls() {
    let (engine, query) = corpus_engine();

    let cold = engine.query(&query);
    let stats = engine.cache_stats();
    assert_eq!(stats.hits, 0, "first query must not hit");
    assert!(stats.misses > 0, "first query must populate the cache");
    // Refine-top-K re-pricings insert entries without touching the
    // hit/miss counters; they are tracked by `refined_pairs` instead.
    assert_eq!(
        stats.entries as u64,
        stats.misses + engine.prefilter_stats().refined_pairs
    );

    engine.reset_cache_counters();
    let warm = engine.query(&query);
    let stats = engine.cache_stats();
    // Zero misses ⇒ zero vcp_pair computations ⇒ zero new solver calls.
    assert_eq!(stats.misses, 0, "warm query must not invoke the verifier");
    assert!(stats.hits > 0);
    assert!(stats.hit_rate() > 0.9);

    for (x, y) in cold.scores.iter().zip(&warm.scores) {
        assert_eq!(x.ges.to_bits(), y.ges.to_bits(), "{}", x.name);
        assert_eq!(x.s_log.to_bits(), y.s_log.to_bits(), "{}", x.name);
        assert_eq!(x.s_vcp.to_bits(), y.s_vcp.to_bits(), "{}", x.name);
    }
}

#[test]
fn persisted_cache_serves_a_fresh_process() {
    let (engine, query) = corpus_engine();
    engine.query(&query);
    let entries_before = engine.cache_stats().entries;
    assert!(entries_before > 0);

    let path = temp_path("warm-cache");
    engine.save_with_cache(&path).unwrap();
    let reloaded = SimilarityEngine::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let stats = reloaded.cache_stats();
    assert_eq!(stats.entries, entries_before);
    reloaded.query(&query);
    assert_eq!(
        reloaded.cache_stats().misses,
        0,
        "restored cache must cover the repeated query"
    );
}

#[test]
fn mismatched_config_fingerprint_is_rejected() {
    let (engine, _) = corpus_engine();
    let path = temp_path("fingerprint");
    engine.save(&path).unwrap();

    // Same snapshot, different expected config ⇒ refuse to serve.
    let other = EngineConfig {
        vcp: VcpConfig {
            min_strand_vars: engine.config().vcp.min_strand_vars + 1,
            ..engine.config().vcp
        },
        ..engine.config().clone()
    };
    match SimilarityEngine::load_compatible(&path, &other) {
        Err(SnapshotError::ConfigMismatch {
            found,
            expected,
            kind,
            ..
        }) => {
            assert_eq!(found, engine.config().fingerprint());
            assert_eq!(expected, other.fingerprint());
            assert_eq!(kind, esh_core::ConfigMismatchKind::Incompatible);
        }
        Err(e) => panic!("expected ConfigMismatch, got {e}"),
        Ok(_) => panic!("expected ConfigMismatch, got a loaded engine"),
    }

    // The matching config still loads.
    let same = engine.config().clone();
    assert!(SimilarityEngine::load_compatible(&path, &same).is_ok());
    std::fs::remove_file(&path).ok();
}

#[test]
fn thread_count_does_not_affect_compatibility() {
    // `threads` is an execution detail, not a corpus property: snapshots
    // built with one parallelism level must load under another.
    let (engine, _) = corpus_engine();
    let path = temp_path("threads");
    engine.save(&path).unwrap();

    let mut other = engine.config().clone();
    other.threads = engine.config().threads + 3;
    assert_eq!(other.fingerprint(), engine.config().fingerprint());
    assert!(SimilarityEngine::load_compatible(&path, &other).is_ok());
    std::fs::remove_file(&path).ok();
}

#[test]
fn unknown_format_version_is_rejected() {
    let (engine, _) = corpus_engine();
    let path = temp_path("version");
    engine.save(&path).unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    let needle = format!("\"format_version\":{}", esh_core::SNAPSHOT_FORMAT_VERSION);
    assert!(text.contains(&needle), "snapshot must record its version");
    let tampered = text.replace(&needle, "\"format_version\":999");
    std::fs::write(&path, tampered).unwrap();

    match SimilarityEngine::load(&path) {
        Err(SnapshotError::VersionMismatch {
            found, expected, ..
        }) => {
            assert_eq!(found, 999);
            assert_eq!(expected, esh_core::SNAPSHOT_FORMAT_VERSION);
        }
        Err(e) => panic!("expected VersionMismatch, got {e}"),
        Ok(_) => panic!("expected VersionMismatch, got a loaded engine"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn tampered_config_is_rejected() {
    // Editing the embedded config without refreshing the fingerprint must
    // fail the recompute check on load.
    let (engine, _) = corpus_engine();
    let path = temp_path("tamper");
    engine.save(&path).unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    let needle = format!(
        "\"prefilter_threshold\":{:?}",
        engine.config().prefilter_threshold
    );
    assert!(text.contains(&needle), "snapshot must embed the config");
    let tampered = text.replace(&needle, "\"prefilter_threshold\":0.123456");
    std::fs::write(&path, tampered).unwrap();

    match SimilarityEngine::load(&path) {
        Err(SnapshotError::ConfigMismatch { .. }) => {}
        Err(e) => panic!("expected ConfigMismatch, got {e}"),
        Ok(_) => panic!("expected ConfigMismatch, got a loaded engine"),
    }
    std::fs::remove_file(&path).ok();
}
