//! Batched-query contracts: `query_batch` must be invisible in results.
//!
//! The serving layer coalesces concurrent requests into one shared engine
//! pass, so everything it serves rests on three pins exercised here:
//! batched scores are byte-identical to sequential `query` (whatever the
//! batch composition or cache warmth), per-item cancellation leaves the
//! rest of the batch untouched, and the exact-cache-counter contract
//! (`hits + misses` = the sum of every item's own lookups) survives
//! batching.

use esh_asm::Procedure;
use esh_cc::{Compiler, Vendor, VendorVersion};
use esh_core::{BatchQuery, CancelToken, EngineConfig, QueryScores, SimilarityEngine};
use esh_minic::demo;
use proptest::prelude::*;

fn gcc() -> Compiler {
    Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9))
}

fn clang() -> Compiler {
    Compiler::new(Vendor::Clang, VendorVersion::new(3, 5))
}

/// A small cross-compiler corpus plus the gcc-built query procedures.
fn corpus_and_queries() -> (Vec<(String, Procedure)>, Vec<Procedure>) {
    let funcs = demo::cve_functions();
    let corpus = funcs
        .iter()
        .map(|(name, f)| (format!("t-{name}"), clang().compile_function(f)))
        .collect();
    let queries = funcs
        .iter()
        .take(4)
        .map(|(_, f)| gcc().compile_function(f))
        .collect();
    (corpus, queries)
}

fn engine_over(corpus: &[(String, Procedure)]) -> SimilarityEngine {
    let mut engine = SimilarityEngine::new(EngineConfig {
        threads: 2,
        ..EngineConfig::default()
    });
    for (name, p) in corpus {
        engine.add_target(name.clone(), p);
    }
    engine
}

fn assert_scores_identical(a: &QueryScores, b: &QueryScores, what: &str) {
    assert_eq!(a.query_strands, b.query_strands, "{what}: strand count");
    assert_eq!(
        a.query_strand_occurrences, b.query_strand_occurrences,
        "{what}: occurrences"
    );
    assert_eq!(a.scores.len(), b.scores.len(), "{what}: score rows");
    for (x, y) in a.scores.iter().zip(&b.scores) {
        assert_eq!(x.target, y.target, "{what}: target order");
        assert_eq!(x.ges.to_bits(), y.ges.to_bits(), "{what}: GES {}", x.name);
        assert_eq!(x.s_log.to_bits(), y.s_log.to_bits(), "{what}: S-LOG {}", x.name);
        assert_eq!(x.s_vcp.to_bits(), y.s_vcp.to_bits(), "{what}: S-VCP {}", x.name);
    }
}

#[test]
fn batch_results_match_sequential_queries_bitwise() {
    let (corpus, queries) = corpus_and_queries();
    // Sequential baseline on one fresh engine…
    let sequential = engine_over(&corpus);
    let expected: Vec<QueryScores> = queries.iter().map(|q| sequential.query(q)).collect();
    // …must match one shared batched pass on another fresh engine, and
    // duplicates inside the batch must not disturb their neighbours.
    let batched = engine_over(&corpus);
    let items: Vec<BatchQuery> = queries
        .iter()
        .chain(queries.iter().take(2)) // repeat two queries in-batch
        .map(|proc_| BatchQuery {
            proc_,
            cancel: CancelToken::new(),
        })
        .collect();
    let results = batched.query_batch(&items);
    assert_eq!(results.len(), queries.len() + 2);
    for (i, result) in results.iter().enumerate() {
        let scores = result.as_ref().expect("live token, live result");
        assert_scores_identical(scores, &expected[i % queries.len()], &format!("item {i}"));
    }
}

#[test]
fn batch_results_are_cache_state_independent() {
    let (corpus, queries) = corpus_and_queries();
    let cold = engine_over(&corpus);
    let cold_items: Vec<BatchQuery> = queries
        .iter()
        .map(|proc_| BatchQuery {
            proc_,
            cancel: CancelToken::new(),
        })
        .collect();
    let first: Vec<QueryScores> = cold
        .query_batch(&cold_items)
        .into_iter()
        .map(|r| r.expect("live token"))
        .collect();
    // The same batch against the now-warm cache, and in reversed order,
    // must reproduce every response byte-for-byte.
    let reversed: Vec<BatchQuery> = queries
        .iter()
        .rev()
        .map(|proc_| BatchQuery {
            proc_,
            cancel: CancelToken::new(),
        })
        .collect();
    let warm = cold.query_batch(&reversed);
    for (i, result) in warm.iter().enumerate() {
        let scores = result.as_ref().expect("live token");
        let expected = &first[queries.len() - 1 - i];
        assert_scores_identical(scores, expected, &format!("warm reversed item {i}"));
    }
}

#[test]
fn cancelled_items_fail_alone_and_leave_neighbours_identical() {
    let (corpus, queries) = corpus_and_queries();
    let sequential = engine_over(&corpus);
    let expected: Vec<QueryScores> = queries.iter().map(|q| sequential.query(q)).collect();

    let engine = engine_over(&corpus);
    let dead = CancelToken::new();
    dead.cancel();
    let expired = CancelToken::with_deadline(std::time::Instant::now());
    let items = vec![
        BatchQuery {
            proc_: &queries[0],
            cancel: CancelToken::new(),
        },
        BatchQuery {
            proc_: &queries[1],
            cancel: dead,
        },
        BatchQuery {
            proc_: &queries[2],
            cancel: expired,
        },
        BatchQuery {
            proc_: &queries[3],
            cancel: CancelToken::new(),
        },
    ];
    let results = engine.query_batch(&items);
    assert!(results[1].is_err(), "cancelled item must fail");
    assert!(results[2].is_err(), "expired item must fail");
    assert_scores_identical(
        results[0].as_ref().expect("live item survives"),
        &expected[0],
        "live item 0",
    );
    assert_scores_identical(
        results[3].as_ref().expect("live item survives"),
        &expected[3],
        "live item 3",
    );
    // The engine stays usable: a retry of a cancelled item completes.
    let retry = engine.query(&queries[1]);
    assert_scores_identical(&retry, &expected[1], "retried item");
}

#[test]
fn batch_cache_counters_equal_the_sum_of_per_item_lookups() {
    let (corpus, queries) = corpus_and_queries();
    // Per-query lookup counts, each measured on its own fresh engine:
    // lookup decisions (size filter, signatures, sketch pricing) are pure
    // per pair, so these are exactly the lookups the batch must perform.
    let mut per_query_lookups = 0u64;
    for q in &queries {
        let engine = engine_over(&corpus);
        engine.query(q);
        let stats = engine.cache_stats();
        per_query_lookups += stats.hits + stats.misses;
    }
    let batched = engine_over(&corpus);
    let items: Vec<BatchQuery> = queries
        .iter()
        .map(|proc_| BatchQuery {
            proc_,
            cancel: CancelToken::new(),
        })
        .collect();
    batched.query_batch(&items);
    let stats = batched.cache_stats();
    assert_eq!(
        stats.hits + stats.misses,
        per_query_lookups,
        "batched pass must count exactly one lookup per live pair: {stats:?}"
    );
    assert!(
        stats.entries as u64 <= stats.misses + batched.prefilter_stats().refined_pairs,
        "every entry stems from a counted miss or a refine verification"
    );
}

#[test]
fn empty_batch_is_a_no_op() {
    let (corpus, _) = corpus_and_queries();
    let engine = engine_over(&corpus);
    assert!(engine.query_batch(&[]).is_empty());
    let stats = engine.cache_stats();
    assert_eq!(stats.hits + stats.misses, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The serve byte-identity contract, extended to batched execution:
    /// whatever subset of queries lands in one batch, in whatever order
    /// and multiplicity, every response is bit-identical to a sequential
    /// `query` of the same procedure on a fresh engine.
    #[test]
    fn any_batch_composition_matches_sequential_bitwise(
        picks in prop::collection::vec(0usize..4, 1..6)
    ) {
        let (corpus, queries) = corpus_and_queries();
        let sequential = engine_over(&corpus);
        let expected: Vec<QueryScores> =
            queries.iter().map(|q| sequential.query(q)).collect();
        let batched = engine_over(&corpus);
        let items: Vec<BatchQuery> = picks
            .iter()
            .map(|&i| BatchQuery {
                proc_: &queries[i],
                cancel: CancelToken::new(),
            })
            .collect();
        let results = batched.query_batch(&items);
        for (slot, &i) in picks.iter().enumerate() {
            let scores = results[slot].as_ref().expect("live token");
            assert_scores_identical(scores, &expected[i], &format!("pick {slot}→{i}"));
        }
    }
}
