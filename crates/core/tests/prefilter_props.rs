//! Property tests for the semantic-sketch prefilter tier.
//!
//! The tier's whole correctness story rests on one inequality — the
//! sketch containment bound never underestimates the exact VCP — plus the
//! engine-level consequences: pairs at or above `exact_fallback_margin`
//! are always verified exactly, and an engine with the tier disabled is
//! bit-for-bit the pre-sketch engine. Each property is exercised over
//! random strands, not the curated corpus.

use esh_asm::{parse_proc, Procedure};
use esh_core::prefilter::{
    bounds_decision, compute_probe_sketch, compute_sketch, PrefilterConfig, SketchDecision,
    SketchIndex,
};
use esh_core::{vcp_pair, EngineConfig, SimilarityEngine, VcpConfig};
use esh_ivl::{lift, Proc};
use esh_verifier::VerifierSession;
use proptest::prelude::*;

const REGS: [&str; 6] = ["rax", "rbx", "rcx", "rdi", "rsi", "r12"];

/// One random instruction over a small register file — enough op variety
/// that strands disagree semantically, small enough that SAT stays fast.
fn arb_inst() -> impl Strategy<Value = String> {
    let reg = || prop::sample::select(REGS.to_vec());
    prop_oneof![
        (reg(), reg()).prop_map(|(a, b)| format!("mov {a}, {b}")),
        (reg(), 1i64..64).prop_map(|(a, c)| format!("add {a}, {c:#x}")),
        (reg(), reg()).prop_map(|(a, b)| format!("add {a}, {b}")),
        (reg(), reg()).prop_map(|(a, b)| format!("xor {a}, {b}")),
        (reg(), reg()).prop_map(|(a, b)| format!("and {a}, {b}")),
        (reg(), 1i64..31).prop_map(|(a, c)| format!("shr {a}, {c:#x}")),
        (reg(), reg(), 0i64..16).prop_map(|(a, b, d)| format!("lea {a}, [{b}+{d:#x}]")),
        (reg(), reg()).prop_map(|(a, b)| format!("imul {a}, {b}")),
    ]
}

/// A random straight-line procedure (2–5 instructions, one block).
fn arb_procedure() -> impl Strategy<Value = Procedure> {
    prop::collection::vec(arb_inst(), 2..6).prop_map(|insts| {
        parse_proc(&format!("proc p\nentry:\n{}\n", insts.join("\n"))).expect("template parses")
    })
}

/// The same, lifted to a single IVL strand.
fn arb_strand() -> impl Strategy<Value = Proc> {
    arb_procedure().prop_map(|p| lift("p", &p.blocks[0].insts))
}

fn permissive_vcp() -> VcpConfig {
    // Let tiny random strands participate; thresholds otherwise default.
    VcpConfig {
        min_strand_vars: 1,
        ..VcpConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The load-bearing inequality: containment never underestimates the
    /// exact VCP, in either direction. (A verified variable match implies
    /// equal values on every uniform round, hence equal digests.)
    #[test]
    fn containment_bound_dominates_exact_vcp(q in arb_strand(), t in arb_strand()) {
        let cfg = PrefilterConfig::default();
        let sq = compute_sketch(&q, &cfg);
        let st = compute_sketch(&t, &cfg);
        let mut session = VerifierSession::new();
        let exact = vcp_pair(&mut session, &q, &t, &permissive_vcp());
        prop_assert!(
            sq.containment_in(&st) >= exact.q_in_t,
            "q->t: bound {} < exact {}", sq.containment_in(&st), exact.q_in_t
        );
        prop_assert!(
            st.containment_in(&sq) >= exact.t_in_q,
            "t->q: bound {} < exact {}", st.containment_in(&sq), exact.t_in_q
        );
    }

    /// The engine-level guarantee, replayed at pair level: whenever the
    /// tier's decision rule would prune a pair (no band collision needed —
    /// pruning already requires both containments below the margin), the
    /// exact VCP is below the margin in both directions, so every score
    /// above `exact_fallback_margin` comes from the exact verifier.
    #[test]
    fn pairs_at_or_above_margin_are_never_pruned(q in arb_strand(), t in arb_strand()) {
        let cfg = PrefilterConfig::default();
        let sq = compute_sketch(&q, &cfg);
        let st = compute_sketch(&t, &cfg);
        let c_q = sq.containment_in(&st);
        let c_t = st.containment_in(&sq);
        if c_q < cfg.exact_fallback_margin && c_t < cfg.exact_fallback_margin {
            let mut session = VerifierSession::new();
            let exact = vcp_pair(&mut session, &q, &t, &permissive_vcp());
            prop_assert!(exact.q_in_t < cfg.exact_fallback_margin);
            prop_assert!(exact.t_in_q < cfg.exact_fallback_margin);
        }
    }

    /// Identical sketches collide in every LSH band, so a class can never
    /// be banded away from its own query strand (the top-1 anchor of the
    /// bench's rank-agreement gate).
    #[test]
    fn a_sketch_always_retrieves_itself(s in arb_strand()) {
        let cfg = PrefilterConfig::default();
        let sketch = compute_sketch(&s, &cfg);
        let index = SketchIndex::build(vec![sketch.clone()], &cfg);
        prop_assert!(index.candidates(&sketch)[0]);
    }

    /// `--no-prefilter` reproduces the pre-sketch engine byte-identically:
    /// a sketch-configured engine with the tier switched off scores every
    /// target with the same f64 bit patterns as an engine built without
    /// the tier, over random corpora and queries.
    #[test]
    fn disabled_tier_is_bitwise_identical_to_no_tier(
        targets in prop::collection::vec(arb_procedure(), 1..4),
        query in arb_procedure(),
    ) {
        let base = EngineConfig {
            vcp: permissive_vcp(),
            threads: 1,
            ..EngineConfig::default()
        };
        let mut with = SimilarityEngine::new(base.clone());
        let mut without = SimilarityEngine::new(EngineConfig { sketch: None, ..base });
        for (i, t) in targets.iter().enumerate() {
            with.add_target(format!("t{i}"), t);
            without.add_target(format!("t{i}"), t);
        }
        with.set_prefilter_enabled(false);
        let a = with.query(&query);
        let b = without.query(&query);
        prop_assert_eq!(a.scores.len(), b.scores.len());
        for (x, y) in a.scores.iter().zip(&b.scores) {
            prop_assert_eq!(x.ges.to_bits(), y.ges.to_bits());
            prop_assert_eq!(x.s_log.to_bits(), y.s_log.to_bits());
            prop_assert_eq!(x.s_vcp.to_bits(), y.s_vcp.to_bits());
        }
    }

    /// When the sketch tier prunes nothing for a query (every pair either
    /// collided into the exact path or fell back), the prefiltered engine
    /// is bitwise identical to the exhaustive one — the estimates are the
    /// only divergence the tier can introduce.
    #[test]
    fn unpruned_queries_score_bitwise_identically(
        targets in prop::collection::vec(arb_procedure(), 1..4),
        query in arb_procedure(),
    ) {
        let base = EngineConfig {
            vcp: permissive_vcp(),
            threads: 1,
            ..EngineConfig::default()
        };
        let on = {
            let mut e = SimilarityEngine::new(base.clone());
            for (i, t) in targets.iter().enumerate() {
                e.add_target(format!("t{i}"), t);
            }
            e
        };
        let off = {
            let mut e = SimilarityEngine::new(EngineConfig { sketch: None, ..base });
            for (i, t) in targets.iter().enumerate() {
                e.add_target(format!("t{i}"), t);
            }
            e
        };
        let a = on.query(&query);
        let b = off.query(&query);
        if on.prefilter_stats().pairs_pruned == 0 {
            for (x, y) in a.scores.iter().zip(&b.scores) {
                prop_assert_eq!(x.ges.to_bits(), y.ges.to_bits());
                prop_assert_eq!(x.s_log.to_bits(), y.s_log.to_bits());
                prop_assert_eq!(x.s_vcp.to_bits(), y.s_vcp.to_bits());
            }
        }
    }

    /// The staged (v4) decision rule, probe path included, upholds the
    /// same guarantee as the base rule: a pair is only ever pruned when
    /// its exact VCP is below `exact_fallback_margin` in both directions.
    /// Replays the engine's pricing ladder — base bounds, then probe
    /// bounds for ambiguous pairs — and verifies every pruned outcome
    /// against the exact verifier.
    #[test]
    fn staged_probing_never_prunes_an_at_or_above_margin_pair(
        q in arb_strand(),
        t in arb_strand(),
    ) {
        let cfg = PrefilterConfig::default();
        let margin = cfg.exact_fallback_margin;
        let sq = compute_sketch(&q, &cfg);
        let st = compute_sketch(&t, &cfg);
        let pruned = match bounds_decision(
            sq.containment_in(&st),
            st.containment_in(&sq),
            margin,
            cfg.probe_window(),
        ) {
            SketchDecision::Prune => true,
            SketchDecision::Exact => false,
            SketchDecision::Probe => {
                // Ambiguous: the engine re-sketches on the probe battery
                // and re-applies the margin to the refined bounds. Only a
                // pair whose probed bounds BOTH fall below the margin is
                // pruned; at/above-margin probe evidence escalates.
                let pq = compute_probe_sketch(&q, &cfg);
                let pt = compute_probe_sketch(&t, &cfg);
                pq.containment_in(&pt) < margin && pt.containment_in(&pq) < margin
            }
        };
        if pruned {
            let mut session = VerifierSession::new();
            let exact = vcp_pair(&mut session, &q, &t, &permissive_vcp());
            prop_assert!(
                exact.q_in_t < margin && exact.t_in_q < margin,
                "staged rule pruned a pair with exact VCP ({}, {}) at margin {margin}",
                exact.q_in_t, exact.t_in_q
            );
        }
    }

    /// Refine-top-K restores exact pairwise evidence for the served
    /// window: with the default config (prune + probe + refine, and
    /// `refine_top_k` ≥ these corpus sizes, so the window is the whole
    /// ranking) every target's S-VCP is bit-identical to the exhaustive
    /// engine's. S-VCP is the observable — it is a pure sum of per-class
    /// VCP maxima, free of the H0 normalizer, which refine shifts equally
    /// for every target without changing pairwise evidence.
    #[test]
    fn refined_window_svcp_is_bitwise_identical_to_exhaustive(
        targets in prop::collection::vec(arb_procedure(), 1..4),
        query in arb_procedure(),
    ) {
        let base = EngineConfig {
            vcp: permissive_vcp(),
            threads: 1,
            ..EngineConfig::default()
        };
        let mut on = SimilarityEngine::new(base.clone());
        let mut off = SimilarityEngine::new(EngineConfig { sketch: None, ..base });
        for (i, t) in targets.iter().enumerate() {
            on.add_target(format!("t{i}"), t);
            off.add_target(format!("t{i}"), t);
        }
        let a = on.query(&query);
        let b = off.query(&query);
        prop_assert!(
            on.prefilter_stats().refine_passes >= 1,
            "refine pass did not run — the property would be vacuous"
        );
        prop_assert_eq!(a.scores.len(), b.scores.len());
        for (x, y) in a.scores.iter().zip(&b.scores) {
            prop_assert_eq!(
                x.s_vcp.to_bits(), y.s_vcp.to_bits(),
                "refined S-VCP diverged from exhaustive for target {:?}", x.target
            );
        }
    }
}
