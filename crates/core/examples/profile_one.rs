//! Profiles a single known-slow strand pair.
use esh_cc::{Compiler, Vendor, VendorVersion};
use esh_core::{vcp_pair, VcpConfig};
use esh_minic::demo;
use esh_strands::{extract_proc_strands, lift_strand};
use esh_verifier::VerifierSession;
use std::time::Instant;

fn main() {
    let gcc = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9));
    let clang = Compiler::new(Vendor::Clang, VendorVersion::new(3, 5));
    let config = VcpConfig::default();
    let q = gcc.compile_function(&demo::heartbleed_like());
    let q_strands: Vec<_> = extract_proc_strands(&q)
        .iter()
        .map(lift_strand)
        .filter(|p| p.vars.len() >= config.min_strand_vars)
        .collect();
    let mut t_strands = Vec::new();
    for (_, f) in demo::cve_functions() {
        let p = clang.compile_function(&f);
        for s in extract_proc_strands(&p) {
            let l = lift_strand(&s);
            if l.vars.len() >= config.min_strand_vars {
                t_strands.push(l);
            }
        }
    }
    let ql = &q_strands[8];
    let tl = &t_strands[66];
    println!("q8:\n{ql}\nt66:\n{tl}");
    let mut session = VerifierSession::new();
    let t0 = Instant::now();
    let v = vcp_pair(&mut session, ql, tl, &config);
    println!("vcp {v:?} in {:?}", t0.elapsed());
    println!("stats {:?}", session.stats());
}
