//! Internal profiling harness: times the VCP layer on the cross-compiler
//! scenario and prints verifier statistics.

use esh_cc::{Compiler, Vendor, VendorVersion};
use esh_core::{vcp_pair, VcpConfig};
use esh_minic::demo;
use esh_strands::{extract_proc_strands, lift_strand, semantic_signature};
use esh_verifier::VerifierSession;
use std::time::Instant;

fn main() {
    let gcc = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9));
    let clang = Compiler::new(Vendor::Clang, VendorVersion::new(3, 5));
    let config = VcpConfig::default();

    // Query strands: heartbleed gcc.
    let q = gcc.compile_function(&demo::heartbleed_like());
    let q_strands: Vec<_> = extract_proc_strands(&q)
        .iter()
        .map(lift_strand)
        .filter(|p| p.vars.len() >= config.min_strand_vars)
        .collect();
    // Target strands: all CVE functions, clang.
    let mut t_strands = Vec::new();
    for (_, f) in demo::cve_functions() {
        let p = clang.compile_function(&f);
        for s in extract_proc_strands(&p) {
            let l = lift_strand(&s);
            if l.vars.len() >= config.min_strand_vars {
                t_strands.push(l);
            }
        }
    }
    println!(
        "query strands: {}, target strands: {}",
        q_strands.len(),
        t_strands.len()
    );

    let q_sigs: Vec<_> = q_strands.iter().map(semantic_signature).collect();
    let t_sigs: Vec<_> = t_strands.iter().map(semantic_signature).collect();

    let mut session = VerifierSession::new();
    let start = Instant::now();
    let mut pairs = 0;
    let mut slow = Vec::new();
    for (qi, ql) in q_strands.iter().enumerate() {
        for (ti, tl) in t_strands.iter().enumerate() {
            if !esh_core::size_ratio_ok(&config, ql.vars.len(), tl.vars.len()) {
                continue;
            }
            let fwd = q_sigs[qi].overlap_bound(&t_sigs[ti]);
            let bwd = t_sigs[ti].overlap_bound(&q_sigs[qi]);
            if fwd < 0.5 && bwd < 0.5 {
                continue;
            }
            eprintln!(
                "pair q{qi} x t{ti} (qv={}, tv={})",
                ql.vars.len(),
                tl.vars.len()
            );
            let t0 = Instant::now();
            let v = vcp_pair(&mut session, ql, tl, &config);
            let dt = t0.elapsed();
            pairs += 1;
            if dt.as_millis() > 200 {
                slow.push((qi, ti, dt, v, ql.vars.len(), tl.vars.len()));
            }
        }
    }
    println!("verified {pairs} pairs in {:?}", start.elapsed());
    println!("stats: {:?}", session.stats());
    slow.sort_by_key(|s| std::cmp::Reverse(s.2));
    for (qi, ti, dt, v, qv, tv) in slow.iter().take(10) {
        println!("  slow pair q{qi}({qv} vars) x t{ti}({tv} vars): {dt:?} -> {v:?}");
    }
}
