//! Debug: why does venom gcc4.9 not rank its clang sibling second?
use esh_cc::{Compiler, Vendor, VendorVersion};
use esh_core::{EngineConfig, SimilarityEngine};
use esh_minic::demo;

fn main() {
    let gcc = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9));
    let clang = Compiler::new(Vendor::Clang, VendorVersion::new(3, 5));
    let mut engine = SimilarityEngine::new(EngineConfig::default());
    for (name, f) in demo::cve_functions() {
        engine.add_target(format!("{name} [clang]"), &clang.compile_function(&f));
    }
    let q = gcc.compile_function(&demo::venom_like());
    println!(
        "query venom gcc4.9: {} insts, {} blocks",
        q.inst_count(),
        q.blocks.len()
    );
    let scores = engine.query(&q);
    for s in scores.ranked() {
        println!(
            "{:>9.3} {:>9.3} {:>7.2} {}",
            s.ges, s.s_log, s.s_vcp, s.name
        );
    }
    println!("query strands: {}", scores.query_strands);
}
