//! Versioned on-disk corpus snapshots.
//!
//! Building a [`SimilarityEngine`] corpus means decomposing, lifting,
//! hashing and signing every target procedure — work that is identical
//! across runs of the evaluation harness and the CLI. A snapshot persists
//! the engine's derived state (strand classes, structural hashes, semantic
//! signatures, target records, configuration) plus, optionally, the warmed
//! cross-query VCP cache, so later processes resume without rebuilding.
//!
//! ## Format
//!
//! A snapshot is a single JSON document (rendered by the vendored
//! `serde_json`) with this top-level shape:
//!
//! ```text
//! {
//!   "format_version": 1,          // SNAPSHOT_FORMAT_VERSION at write time
//!   "config_fingerprint": <u64>,  // EngineConfig::fingerprint() at write time
//!   "config": { ... },            // full EngineConfig (threads included but
//!                                 //   excluded from the fingerprint)
//!   "classes": [ ... ],           // deduplicated strand classes, with their
//!                                 //   structural hashes and signatures
//!   "targets": [ ... ],           // per-target (class index, count) lists
//!   "cache": [ ... ]              // optional warmed VCP cache entries
//! }
//! ```
//!
//! ## Invalidation rules
//!
//! * `format_version` must equal [`SNAPSHOT_FORMAT_VERSION`] exactly —
//!   there is no cross-version migration. Bump the constant whenever the
//!   serialized shape of any embedded type changes.
//! * `config_fingerprint` must equal the fingerprint recomputed from the
//!   embedded `config`; a mismatch means the file was edited or corrupted.
//! * [`SimilarityEngine::load_compatible`] additionally rejects snapshots
//!   whose fingerprint differs from the caller's expected configuration,
//!   so experiment harnesses never silently reuse state built under
//!   different thresholds. `threads` is a runtime knob and deliberately
//!   excluded from the fingerprint.
//! * Structural hashes are computed with the standard library's default
//!   hasher, so snapshots are tied to the toolchain that wrote them;
//!   rebuild snapshots after a compiler upgrade.

use std::collections::HashMap;
use std::fmt;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::cache::{VcpCache, VcpCacheEntry};
use crate::engine::{EngineConfig, SimilarityEngine, StrandClass, TargetRecord};

/// Current snapshot format version.
///
/// Bump policy: increment on **any** change to the serialized shape of
/// [`EngineConfig`], [`StrandClass`], [`TargetRecord`], [`VcpCacheEntry`]
/// or the top-level layout, even backward-compatible ones — loaders
/// reject on inequality rather than attempting migration.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 2;

/// Why a snapshot failed to save or load.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem error.
    Io(std::io::Error),
    /// The file is not a well-formed snapshot document.
    Format(String),
    /// The file was written by an incompatible format version.
    VersionMismatch {
        /// Version recorded in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The configuration fingerprint does not match.
    ConfigMismatch {
        /// Fingerprint recorded in (or recomputed from) the file.
        found: u64,
        /// Fingerprint the loader requires.
        expected: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o: {e}"),
            SnapshotError::Format(msg) => write!(f, "snapshot format: {msg}"),
            SnapshotError::VersionMismatch { found, expected } => write!(
                f,
                "snapshot version {found} is not supported (this build reads \
                 version {expected}); rebuild the index"
            ),
            SnapshotError::ConfigMismatch { found, expected } => write!(
                f,
                "snapshot config fingerprint {found:#018x} does not match the \
                 expected {expected:#018x}; the snapshot was built under \
                 different engine thresholds — rebuild the index"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// The on-disk document. Field order is the serialization order.
#[derive(Serialize, Deserialize)]
struct SnapshotFile {
    format_version: u32,
    config_fingerprint: u64,
    config: EngineConfig,
    classes: Vec<StrandClass>,
    targets: Vec<TargetRecord>,
    cache: Vec<VcpCacheEntry>,
}

impl SimilarityEngine {
    /// Serializes the engine's corpus state to `path` (without the VCP
    /// cache; use [`SimilarityEngine::save_with_cache`] to persist warmed
    /// results too).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        self.write_snapshot(path.as_ref(), Vec::new())
    }

    /// Serializes corpus state *and* the current VCP cache contents, so a
    /// later process starts with every previously verified pair memoized.
    pub fn save_with_cache(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        self.write_snapshot(path.as_ref(), self.cache().entries())
    }

    fn write_snapshot(&self, path: &Path, cache: Vec<VcpCacheEntry>) -> Result<(), SnapshotError> {
        let file = SnapshotFile {
            format_version: SNAPSHOT_FORMAT_VERSION,
            config_fingerprint: self.config().fingerprint(),
            config: self.config().clone(),
            classes: self.classes_for_snapshot().to_vec(),
            targets: self.targets_for_snapshot().to_vec(),
            cache,
        };
        let json = serde_json::to_string(&file)
            .map_err(|e| SnapshotError::Format(e.to_string()))?;
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Restores an engine from a snapshot written by
    /// [`SimilarityEngine::save`] / `save_with_cache`.
    ///
    /// Rejects files whose `format_version` differs from
    /// [`SNAPSHOT_FORMAT_VERSION`], and files whose recorded fingerprint
    /// does not match the one recomputed from the embedded configuration
    /// (a tamper/corruption check).
    pub fn load(path: impl AsRef<Path>) -> Result<SimilarityEngine, SnapshotError> {
        let text = std::fs::read_to_string(path.as_ref())?;
        let file: SnapshotFile =
            serde_json::from_str(&text).map_err(|e| SnapshotError::Format(e.to_string()))?;
        if file.format_version != SNAPSHOT_FORMAT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                found: file.format_version,
                expected: SNAPSHOT_FORMAT_VERSION,
            });
        }
        let recomputed = file.config.fingerprint();
        if file.config_fingerprint != recomputed {
            return Err(SnapshotError::ConfigMismatch {
                found: file.config_fingerprint,
                expected: recomputed,
            });
        }
        let mut class_by_hash = HashMap::with_capacity(file.classes.len());
        for (i, class) in file.classes.iter().enumerate() {
            class_by_hash.insert(class.hash, i);
        }
        if class_by_hash.len() != file.classes.len() {
            return Err(SnapshotError::Format(
                "duplicate strand-class hashes in snapshot".into(),
            ));
        }
        for target in &file.targets {
            if target.strands.iter().any(|&(ci, _)| ci >= file.classes.len()) {
                return Err(SnapshotError::Format(format!(
                    "target `{}` references a class index out of range",
                    target.name
                )));
            }
        }
        Ok(SimilarityEngine::from_snapshot_parts(
            file.config,
            file.classes,
            class_by_hash,
            file.targets,
            VcpCache::from_entries(&file.cache),
        ))
    }

    /// Like [`SimilarityEngine::load`], but also rejects snapshots whose
    /// configuration fingerprint differs from `expected`'s — the guard
    /// experiment harnesses use before reusing an index across runs.
    pub fn load_compatible(
        path: impl AsRef<Path>,
        expected: &EngineConfig,
    ) -> Result<SimilarityEngine, SnapshotError> {
        let engine = SimilarityEngine::load(path)?;
        let found = engine.config().fingerprint();
        let want = expected.fingerprint();
        if found != want {
            return Err(SnapshotError::ConfigMismatch { found, expected: want });
        }
        Ok(engine)
    }
}
