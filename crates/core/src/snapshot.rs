//! Versioned on-disk corpus snapshots.
//!
//! Building a [`SimilarityEngine`] corpus means decomposing, lifting,
//! hashing and signing every target procedure — work that is identical
//! across runs of the evaluation harness and the CLI. A snapshot persists
//! the engine's derived state (strand classes, structural hashes, semantic
//! signatures, target records, configuration) plus, optionally, the warmed
//! cross-query VCP cache, so later processes resume without rebuilding.
//!
//! ## Format
//!
//! A snapshot is a single JSON document (rendered by the vendored
//! `serde_json`) with this top-level shape:
//!
//! ```text
//! {
//!   "format_version": 1,          // SNAPSHOT_FORMAT_VERSION at write time
//!   "config_fingerprint": <u64>,  // EngineConfig::fingerprint() at write time
//!   "config": { ... },            // full EngineConfig (threads included but
//!                                 //   excluded from the fingerprint)
//!   "classes": [ ... ],           // deduplicated strand classes, with their
//!                                 //   structural hashes and signatures
//!   "targets": [ ... ],           // per-target (class index, count) lists
//!   "cache": [ ... ]              // optional warmed VCP cache entries
//! }
//! ```
//!
//! ## Invalidation rules
//!
//! * `format_version` must be a version this build reads. Version 3 added
//!   optional per-class semantic sketches and the `sketch` config block;
//!   both deserialize as absent from a version-2 document, so v2 snapshots
//!   still load — their sketches are rebuilt lazily on the first
//!   prefilter-enabled query, and the next save writes v3. Older versions
//!   are rejected; bump the constant whenever the serialized shape of any
//!   embedded type changes incompatibly.
//! * `config_fingerprint` must equal the fingerprint recomputed from the
//!   embedded `config`; a mismatch means the file was edited or corrupted.
//! * [`SimilarityEngine::load_compatible`] additionally rejects snapshots
//!   whose fingerprint differs from the caller's expected configuration,
//!   so experiment harnesses never silently reuse state built under
//!   different thresholds. `threads` is a runtime knob and deliberately
//!   excluded from the fingerprint.
//! * Structural hashes are computed with the standard library's default
//!   hasher, so snapshots are tied to the toolchain that wrote them;
//!   rebuild snapshots after a compiler upgrade.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::cache::{VcpCache, VcpCacheEntry};
use crate::engine::{EngineConfig, SimilarityEngine, StrandClass, TargetRecord};

/// Current snapshot format version.
///
/// Bump policy: increment on **any** change to the serialized shape of
/// [`EngineConfig`], [`StrandClass`], [`TargetRecord`], [`VcpCacheEntry`]
/// or the top-level layout. Purely additive optional fields may keep the
/// older version readable (list it in [`READABLE_FORMAT_VERSIONS`]);
/// anything else is rejected rather than migrated.
///
/// Version 4 added the staged-pricing knobs on `PrefilterConfig`
/// (`ambiguity_window`, `probe_vectors`, `refine_top_k`) — optional
/// fields, absent in older files, whose absence means "pre-probe
/// behavior" and leaves the recorded fingerprint unchanged.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 4;

/// Format versions [`SimilarityEngine::load`] accepts. Version 2 predates
/// per-class semantic sketches; its documents parse with `sketch: None`
/// everywhere and the engine rebuilds sketches lazily. Version 3 predates
/// the staged-pricing knobs; its configs parse with the probe and refine
/// fields `None`, which the engine treats as the v3 pricing rule
/// (collision ⇒ exact, no ambiguity probing, no window refinement).
pub const READABLE_FORMAT_VERSIONS: [u32; 3] = [2, 3, SNAPSHOT_FORMAT_VERSION];

/// How a [`SnapshotError::ConfigMismatch`] came about — the two cases call
/// for different operator action, so the error spells them apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigMismatchKind {
    /// The fingerprint recorded in the file disagrees with the one
    /// recomputed from the embedded configuration: the file was edited or
    /// corrupted after it was written.
    Corrupted,
    /// The snapshot is internally consistent but was built under engine
    /// thresholds different from the caller's required configuration.
    Incompatible,
}

/// Why a snapshot failed to save or load. Every variant names the file it
/// refers to, so a daemon juggling several indexes produces actionable
/// startup errors.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem error.
    Io {
        /// File being read or written.
        path: PathBuf,
        /// Underlying error.
        source: std::io::Error,
    },
    /// The file is not a well-formed snapshot document.
    Format {
        /// File that failed to parse.
        path: PathBuf,
        /// What was wrong with it.
        detail: String,
    },
    /// The file was written by an incompatible format version.
    VersionMismatch {
        /// File that was rejected.
        path: PathBuf,
        /// Version recorded in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The configuration fingerprint does not match.
    ConfigMismatch {
        /// File that was rejected.
        path: PathBuf,
        /// Fingerprint recorded in the file.
        found: u64,
        /// Fingerprint the loader requires.
        expected: u64,
        /// Whether this is corruption or an honest config difference.
        kind: ConfigMismatchKind,
    },
}

impl SnapshotError {
    /// The snapshot file the error refers to.
    pub fn path(&self) -> &Path {
        match self {
            SnapshotError::Io { path, .. }
            | SnapshotError::Format { path, .. }
            | SnapshotError::VersionMismatch { path, .. }
            | SnapshotError::ConfigMismatch { path, .. } => path,
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io { path, source } => {
                write!(f, "snapshot {}: i/o: {source}", path.display())
            }
            SnapshotError::Format { path, detail } => {
                write!(f, "snapshot {}: malformed document: {detail}", path.display())
            }
            SnapshotError::VersionMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "snapshot {}: format version {found} is not supported (this \
                 build reads version {expected}); rebuild the index",
                path.display()
            ),
            SnapshotError::ConfigMismatch {
                path,
                found,
                expected,
                kind,
            } => match kind {
                ConfigMismatchKind::Corrupted => write!(
                    f,
                    "snapshot {}: recorded config fingerprint {found:#018x} \
                     does not match {expected:#018x} recomputed from the \
                     embedded configuration — the file was edited or \
                     corrupted after it was written; rebuild the index",
                    path.display()
                ),
                ConfigMismatchKind::Incompatible => write!(
                    f,
                    "snapshot {}: built under config fingerprint {found:#018x} \
                     but this run requires {expected:#018x} — the engine \
                     thresholds differ; rebuild the index under the current \
                     configuration",
                    path.display()
                ),
            },
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The on-disk document. Field order is the serialization order.
#[derive(Serialize, Deserialize)]
struct SnapshotFile {
    format_version: u32,
    config_fingerprint: u64,
    config: EngineConfig,
    classes: Vec<StrandClass>,
    targets: Vec<TargetRecord>,
    cache: Vec<VcpCacheEntry>,
}

impl SimilarityEngine {
    /// Serializes the engine's corpus state to `path` (without the VCP
    /// cache; use [`SimilarityEngine::save_with_cache`] to persist warmed
    /// results too).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        self.write_snapshot(path.as_ref(), Vec::new())
    }

    /// Serializes corpus state *and* the current VCP cache contents, so a
    /// later process starts with every previously verified pair memoized.
    pub fn save_with_cache(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        self.write_snapshot(path.as_ref(), self.cache().entries())
    }

    fn write_snapshot(&self, path: &Path, cache: Vec<VcpCacheEntry>) -> Result<(), SnapshotError> {
        let file = SnapshotFile {
            format_version: SNAPSHOT_FORMAT_VERSION,
            config_fingerprint: self.config().fingerprint(),
            config: self.config().clone(),
            classes: self.classes_for_snapshot(),
            targets: self.targets_for_snapshot().to_vec(),
            cache,
        };
        let json = serde_json::to_string(&file).map_err(|e| SnapshotError::Format {
            path: path.to_path_buf(),
            detail: e.to_string(),
        })?;
        std::fs::write(path, json).map_err(|e| SnapshotError::Io {
            path: path.to_path_buf(),
            source: e,
        })?;
        Ok(())
    }

    /// Restores an engine from a snapshot written by
    /// [`SimilarityEngine::save`] / `save_with_cache`.
    ///
    /// Rejects files whose `format_version` is not in
    /// [`READABLE_FORMAT_VERSIONS`], and files whose recorded fingerprint
    /// does not match the one recomputed from the embedded configuration
    /// (a tamper/corruption check). Version-2 documents (pre-sketch) load
    /// with no per-class sketches; a prefilter-enabled engine rebuilds
    /// them lazily on its first query.
    pub fn load(path: impl AsRef<Path>) -> Result<SimilarityEngine, SnapshotError> {
        let path = path.as_ref();
        let format_err = |detail: String| SnapshotError::Format {
            path: path.to_path_buf(),
            detail,
        };
        let text = std::fs::read_to_string(path).map_err(|e| SnapshotError::Io {
            path: path.to_path_buf(),
            source: e,
        })?;
        let file: SnapshotFile =
            serde_json::from_str(&text).map_err(|e| format_err(e.to_string()))?;
        if !READABLE_FORMAT_VERSIONS.contains(&file.format_version) {
            return Err(SnapshotError::VersionMismatch {
                path: path.to_path_buf(),
                found: file.format_version,
                expected: SNAPSHOT_FORMAT_VERSION,
            });
        }
        let recomputed = file.config.fingerprint();
        if file.config_fingerprint != recomputed {
            return Err(SnapshotError::ConfigMismatch {
                path: path.to_path_buf(),
                found: file.config_fingerprint,
                expected: recomputed,
                kind: ConfigMismatchKind::Corrupted,
            });
        }
        let mut class_by_hash = HashMap::with_capacity(file.classes.len());
        for (i, class) in file.classes.iter().enumerate() {
            class_by_hash.insert(class.hash, i);
        }
        if class_by_hash.len() != file.classes.len() {
            return Err(format_err("duplicate strand-class hashes in snapshot".into()));
        }
        for target in &file.targets {
            if target.strands.iter().any(|&(ci, _)| ci >= file.classes.len()) {
                return Err(format_err(format!(
                    "target `{}` references a class index out of range",
                    target.name
                )));
            }
        }
        Ok(SimilarityEngine::from_snapshot_parts(
            file.config,
            file.classes,
            class_by_hash,
            file.targets,
            VcpCache::from_entries(&file.cache),
        ))
    }

    /// Like [`SimilarityEngine::load`], but also rejects snapshots whose
    /// configuration fingerprint differs from `expected`'s — the guard
    /// experiment harnesses use before reusing an index across runs.
    pub fn load_compatible(
        path: impl AsRef<Path>,
        expected: &EngineConfig,
    ) -> Result<SimilarityEngine, SnapshotError> {
        let path = path.as_ref();
        let engine = SimilarityEngine::load(path)?;
        let found = engine.config().fingerprint();
        let want = expected.fingerprint();
        if found != want {
            return Err(SnapshotError::ConfigMismatch {
                path: path.to_path_buf(),
                found,
                expected: want,
                kind: ConfigMismatchKind::Incompatible,
            });
        }
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("esh-snapshot-err-{name}-{}", std::process::id()))
    }

    /// A tiny engine whose snapshot is cheap to write and tamper with.
    fn tiny_engine() -> SimilarityEngine {
        let p = esh_asm::parse_proc(
            "proc p\nentry:\nmov r12, rbx\nadd r12, 5\nlea rdi, [r12+0x3]\nxor rax, rdi",
        )
        .unwrap();
        let mut engine = SimilarityEngine::new(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        });
        engine.add_target("t0", &p);
        engine
    }

    #[test]
    fn missing_file_reports_path() {
        let path = temp_path("does-not-exist");
        match SimilarityEngine::load(&path) {
            Err(e @ SnapshotError::Io { .. }) => {
                assert_eq!(e.path(), path.as_path());
                assert!(e.to_string().contains(&path.display().to_string()));
            }
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn garbage_document_reports_path_and_detail() {
        let path = temp_path("garbage");
        std::fs::write(&path, "not json at all").unwrap();
        match SimilarityEngine::load(&path) {
            Err(e @ SnapshotError::Format { .. }) => {
                assert_eq!(e.path(), path.as_path());
                assert!(e.to_string().contains("malformed"));
                assert!(e.to_string().contains(&path.display().to_string()));
            }
            other => panic!("expected Format error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_mismatch_reports_path_and_both_versions() {
        let path = temp_path("version");
        tiny_engine().save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let needle = format!("\"format_version\":{SNAPSHOT_FORMAT_VERSION}");
        std::fs::write(&path, text.replace(&needle, "\"format_version\":777")).unwrap();
        match SimilarityEngine::load(&path) {
            Err(
                e @ SnapshotError::VersionMismatch {
                    found: 777,
                    expected: SNAPSHOT_FORMAT_VERSION,
                    ..
                },
            ) => {
                let msg = e.to_string();
                assert!(msg.contains(&path.display().to_string()));
                assert!(msg.contains("777"));
                assert!(msg.contains(&SNAPSHOT_FORMAT_VERSION.to_string()));
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_snapshot_loads_and_rebuilds_sketches_lazily() {
        // A pre-sketch (format 2) document: no `sketch` key anywhere and
        // a fingerprint computed without the sketch block. It must load,
        // serve prefilter-enabled queries (sketching on demand), and save
        // back as the current version.
        let p = esh_asm::parse_proc(
            "proc p\nentry:\nmov r12, rbx\nadd r12, 5\nlea rdi, [r12+0x3]\nxor rax, rdi",
        )
        .unwrap();
        let mut engine = SimilarityEngine::new(EngineConfig {
            threads: 1,
            sketch: None,
            ..EngineConfig::default()
        });
        engine.add_target("t0", &p);
        let path = temp_path("v2-forward");
        engine.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // Rewrite as a faithful v2 document: drop the null sketch fields
        // the v3 writer emits and stamp the old version number.
        let v2 = text
            .replace(&format!("\"format_version\":{SNAPSHOT_FORMAT_VERSION}"), "\"format_version\":2")
            .replace(",\"sketch\":null", "")
            .replace("\"sketch\":null,", "");
        assert!(!v2.contains("sketch"), "v2 doc must not mention sketches");
        std::fs::write(&path, &v2).unwrap();

        let mut restored = SimilarityEngine::load(&path).expect("v2 snapshot must load");
        assert!(restored.config().sketch.is_none(), "v2 config has no sketch tier");
        restored.set_prefilter_enabled(true);
        let scores = restored.query(&p);
        assert_eq!(scores.scores.len(), 1);
        let stats = restored.prefilter_stats();
        assert!(
            stats.sketch_collisions + stats.pairs_pruned + stats.exact_fallbacks > 0,
            "lazily rebuilt sketches never consulted: {stats:?}"
        );
        restored.save(&path).unwrap();
        let resaved = std::fs::read_to_string(&path).unwrap();
        assert!(resaved.contains(&format!("\"format_version\":{SNAPSHOT_FORMAT_VERSION}")));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v3_snapshot_loads_with_pre_probe_pricing() {
        // A format-3 document: sketch tier present but none of the
        // staged-pricing knobs (`ambiguity_window`, `probe_vectors`,
        // `refine_top_k`) and a fingerprint computed without them. It
        // must load with those fields `None` — the v3 pricing rule
        // (collision ⇒ exact, no probing, no refinement) — keep its
        // recorded fingerprint, and save back as the current version.
        let p = esh_asm::parse_proc(
            "proc p\nentry:\nmov r12, rbx\nadd r12, 5\nlea rdi, [r12+0x3]\nxor rax, rdi",
        )
        .unwrap();
        let sketch = crate::prefilter::PrefilterConfig {
            ambiguity_window: None,
            probe_vectors: None,
            refine_top_k: None,
            ..crate::prefilter::PrefilterConfig::default()
        };
        let mut engine = SimilarityEngine::new(EngineConfig {
            threads: 1,
            sketch: Some(sketch),
            ..EngineConfig::default()
        });
        engine.add_target("t0", &p);
        let recorded_fp = engine.config().fingerprint();
        let path = temp_path("v3-forward");
        engine.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // Rewrite as a faithful v3 document: drop the null knob fields
        // the v4 writer emits and stamp the old version number.
        let v3 = text
            .replace(
                &format!("\"format_version\":{SNAPSHOT_FORMAT_VERSION}"),
                "\"format_version\":3",
            )
            .replace(",\"ambiguity_window\":null", "")
            .replace("\"ambiguity_window\":null,", "")
            .replace(",\"probe_vectors\":null", "")
            .replace("\"probe_vectors\":null,", "")
            .replace(",\"refine_top_k\":null", "")
            .replace("\"refine_top_k\":null,", "");
        assert!(
            !v3.contains("ambiguity_window") && !v3.contains("refine_top_k"),
            "v3 doc must not mention the staged-pricing knobs"
        );
        std::fs::write(&path, &v3).unwrap();

        let restored = SimilarityEngine::load(&path).expect("v3 snapshot must load");
        let cfg = restored.config().sketch.as_ref().expect("sketch tier survives");
        assert!(
            cfg.ambiguity_window.is_none()
                && cfg.probe_vectors.is_none()
                && cfg.refine_top_k.is_none(),
            "absent knobs must parse as the v3 pricing rule"
        );
        assert_eq!(
            restored.config().fingerprint(),
            recorded_fp,
            "absent knobs must not move the fingerprint"
        );
        let scores = restored.query(&p);
        assert_eq!(scores.scores.len(), 1);
        restored.save(&path).unwrap();
        let resaved = std::fs::read_to_string(&path).unwrap();
        assert!(resaved.contains(&format!("\"format_version\":{SNAPSHOT_FORMAT_VERSION}")));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tampered_fingerprint_is_reported_as_corruption() {
        let engine = tiny_engine();
        let path = temp_path("corrupt");
        engine.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let needle = format!("\"config_fingerprint\":{}", engine.config().fingerprint());
        assert!(text.contains(&needle));
        std::fs::write(&path, text.replace(&needle, "\"config_fingerprint\":12345")).unwrap();
        match SimilarityEngine::load(&path) {
            Err(
                e @ SnapshotError::ConfigMismatch {
                    kind: ConfigMismatchKind::Corrupted,
                    found: 12345,
                    ..
                },
            ) => {
                let msg = e.to_string();
                assert!(msg.contains("corrupted"));
                assert!(msg.contains(&path.display().to_string()));
            }
            other => panic!("expected corrupted ConfigMismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn incompatible_config_is_reported_as_such() {
        let engine = tiny_engine();
        let path = temp_path("incompatible");
        engine.save(&path).unwrap();
        let mut want = engine.config().clone();
        want.prefilter_threshold += 0.125;
        match SimilarityEngine::load_compatible(&path, &want) {
            Err(
                e @ SnapshotError::ConfigMismatch {
                    kind: ConfigMismatchKind::Incompatible,
                    ..
                },
            ) => {
                let msg = e.to_string();
                assert!(msg.contains("thresholds differ"));
                assert!(msg.contains(&path.display().to_string()));
                assert!(msg.contains(&format!("{:#018x}", engine.config().fingerprint())));
                assert!(msg.contains(&format!("{:#018x}", want.fingerprint())));
            }
            other => panic!("expected incompatible ConfigMismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }
}
