//! Variable Containment Proportion — the paper's Definition 3 computed by
//! Algorithm 2 with the §5.5 optimizations.
//!
//! Given two lifted strands, enumerate type-respecting input
//! correspondences γ (total and injective on the query's inputs), realize
//! each γ by unifying solver variables, and resolve *all* non-input
//! variable matches in one pass — concrete evaluation buckets candidate
//! pairs, the layered checker confirms them. The result is the maximal
//! fraction of query variables with an equivalent counterpart.

use std::collections::HashMap;

use esh_ivl::{Proc, Sort, VarId};
use esh_solver::eval::{eval_many, Assignment, CVal};
use esh_solver::Verdict;
use esh_verifier::{InputNamer, VerifierSession};
use serde::{Deserialize, Serialize};

/// Tuning for the VCP search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VcpConfig {
    /// Minimum non-input variable count for a strand to participate
    /// (§5.5: 5 in the paper's experiments).
    pub min_strand_vars: usize,
    /// Candidate pairs must satisfy `0.5 ≤ |Vars(q)|/|Vars(t)| ≤ 2`
    /// (§5.5). Stored as the lower ratio.
    pub size_ratio: f64,
    /// Cap on enumerated input correspondences per strand pair.
    pub max_correspondences: usize,
    /// How many correspondences (best digest bound first) are verified.
    pub verified_gammas: usize,
}

impl Default for VcpConfig {
    fn default() -> VcpConfig {
        VcpConfig {
            min_strand_vars: 5,
            size_ratio: 0.5,
            max_correspondences: 24,
            verified_gammas: 3,
        }
    }
}

impl VcpConfig {
    /// Stable FNV-1a digest over every threshold. Cached VCP results are
    /// only valid under the exact configuration that produced them, so the
    /// cross-query cache and on-disk snapshots key on this value.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for field in [
            self.min_strand_vars as u64,
            self.size_ratio.to_bits(),
            self.max_correspondences as u64,
            self.verified_gammas as u64,
        ] {
            for b in field.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        h
    }
}

/// Both directions of the VCP for one strand pair.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct VcpPair {
    /// `VCP(q, t)`: fraction of query variables matched in the target.
    pub q_in_t: f64,
    /// `VCP(t, q)`: fraction of target variables matched in the query.
    pub t_in_q: f64,
}

/// True if the pair passes the §5.5 size-ratio filter.
pub fn size_ratio_ok(config: &VcpConfig, q_vars: usize, t_vars: usize) -> bool {
    if q_vars == 0 || t_vars == 0 {
        return false;
    }
    let r = q_vars as f64 / t_vars as f64;
    r >= config.size_ratio && r <= 1.0 / config.size_ratio
}

/// Groups input ids of a procedure by sort.
fn inputs_by_sort(p: &Proc) -> HashMap<Sort, Vec<VarId>> {
    let mut m: HashMap<Sort, Vec<VarId>> = HashMap::new();
    for i in p.inputs() {
        m.entry(p.var(i).sort).or_default().push(i);
    }
    m
}

/// Enumerates type-respecting injective total correspondences from the
/// query's inputs into the target's, up to `cap`.
fn enumerate_gammas(q: &Proc, t: &Proc, cap: usize) -> Vec<Vec<(VarId, VarId)>> {
    let qg = inputs_by_sort(q);
    let tg = inputs_by_sort(t);
    // Infeasible if any sort group lacks capacity.
    for (sort, qs) in &qg {
        if tg.get(sort).map_or(0, Vec::len) < qs.len() {
            return Vec::new();
        }
    }
    // Per-sort injection enumerations, then the cross product.
    let mut gammas: Vec<Vec<(VarId, VarId)>> = vec![Vec::new()];
    for (sort, qs) in &qg {
        let ts = &tg[sort];
        let mut group: Vec<Vec<(VarId, VarId)>> = Vec::new();
        let mut used = vec![false; ts.len()];
        let mut cur: Vec<(VarId, VarId)> = Vec::new();
        fn rec(
            qs: &[VarId],
            ts: &[VarId],
            used: &mut [bool],
            cur: &mut Vec<(VarId, VarId)>,
            out: &mut Vec<Vec<(VarId, VarId)>>,
            cap: usize,
        ) {
            if out.len() >= cap {
                return;
            }
            match qs.first() {
                None => out.push(cur.clone()),
                Some(&qv) => {
                    for (i, &tv) in ts.iter().enumerate() {
                        if !used[i] {
                            used[i] = true;
                            cur.push((qv, tv));
                            rec(&qs[1..], ts, used, cur, out, cap);
                            cur.pop();
                            used[i] = false;
                        }
                    }
                }
            }
        }
        rec(qs, ts, &mut used, &mut cur, &mut group, cap);
        let mut next = Vec::new();
        'outer: for g in &gammas {
            for extra in &group {
                let mut combined = g.clone();
                combined.extend(extra.iter().copied());
                next.push(combined);
                if next.len() >= cap {
                    break 'outer;
                }
            }
        }
        gammas = next;
    }
    gammas
}

/// Computes both VCP directions for a strand pair (already filtered).
///
/// The returned values are maxima over all enumerated input
/// correspondences.
pub fn vcp_pair(session: &mut VerifierSession, q: &Proc, t: &Proc, config: &VcpConfig) -> VcpPair {
    let q_temps = q.temps();
    let t_temps = t.temps();
    if q_temps.is_empty() || t_temps.is_empty() {
        return VcpPair::default();
    }
    let gammas = enumerate_gammas(q, t, config.max_correspondences);
    if gammas.is_empty() {
        return VcpPair::default();
    }

    // Phase 1 — cheap digest pass per correspondence: evaluate every
    // variable of both strands on shared random assignments. Digest
    // agreement is an upper bound on the verified match count, so the
    // correspondences can be ranked and only the most promising verified.
    const DIGEST_ROUNDS: [u64; 3] = [0x5eed, 0xace5, 0x1dea];
    let digest_of = |v: &CVal| -> u64 {
        match v {
            CVal::Bv(v) => *v,
            CVal::Mem(m) => {
                let mut h = 0xcbf2_9ce4_8422_2325u64 ^ m.seed;
                for s in &m.stores {
                    h = (h ^ s.0 ^ (u64::from(s.1) << 32) ^ s.2).wrapping_mul(0x100_0000_01b3);
                }
                h
            }
        }
    };

    struct GammaEval {
        q_term_list: Vec<esh_solver::TermId>,
        t_term_list: Vec<esh_solver::TermId>,
        q_digests: Vec<(u64, u32)>,
        t_digests: Vec<(u64, u32)>,
        bound_q: usize,
        bound_t: usize,
    }

    let mut evals: Vec<GammaEval> = Vec::with_capacity(gammas.len());
    for gamma in &gammas {
        let mut namer = InputNamer::new();
        for (qi, ti) in gamma {
            let shared = namer.fresh();
            namer.unify(0, *qi, shared);
            namer.unify(1, *ti, shared);
        }
        let q_terms = session.encode(q, |v| namer.id_for(0, v));
        let t_terms = session.encode(t, |v| namer.id_for(1, v));
        let q_term_list: Vec<_> = q_temps.iter().map(|v| q_terms[v.index()]).collect();
        let t_term_list: Vec<_> = t_temps.iter().map(|v| t_terms[v.index()]).collect();
        let all_terms: Vec<_> = q_term_list
            .iter()
            .chain(t_term_list.iter())
            .copied()
            .collect();
        let mut q_digests: Vec<(u64, u32)> = q_term_list
            .iter()
            .map(|t| (0xcbf2_9ce4u64, session.width(*t)))
            .collect();
        let mut t_digests: Vec<(u64, u32)> = t_term_list
            .iter()
            .map(|t| (0xcbf2_9ce4u64, session.width(*t)))
            .collect();
        for round in DIGEST_ROUNDS {
            let asn = Assignment::random(round);
            let vals = eval_many(session.pool(), &all_terms, &asn);
            for (k, v) in vals[..q_term_list.len()].iter().enumerate() {
                q_digests[k].0 = (q_digests[k].0 ^ digest_of(v)).wrapping_mul(0x100_0000_01b3);
            }
            for (k, v) in vals[q_term_list.len()..].iter().enumerate() {
                t_digests[k].0 = (t_digests[k].0 ^ digest_of(v)).wrapping_mul(0x100_0000_01b3);
            }
        }
        // Upper bounds: digests present on the other side.
        let t_set: std::collections::HashSet<(u64, u32)> = t_digests.iter().copied().collect();
        let q_set: std::collections::HashSet<(u64, u32)> = q_digests.iter().copied().collect();
        let bound_q = q_digests.iter().filter(|d| t_set.contains(d)).count();
        let bound_t = t_digests.iter().filter(|d| q_set.contains(d)).count();
        evals.push(GammaEval {
            q_term_list,
            t_term_list,
            q_digests,
            t_digests,
            bound_q,
            bound_t,
        });
    }
    // Most promising correspondences first.
    evals.sort_by_key(|e| std::cmp::Reverse(e.bound_q + e.bound_t));

    // Phase 2 — verify, best-bound first, skipping correspondences whose
    // upper bound cannot improve the result.
    let mut best_q = 0usize;
    let mut best_t = 0usize;
    let mut verified = 0usize;
    for ev in &evals {
        if ev.bound_q <= best_q && ev.bound_t <= best_t {
            continue;
        }
        // Verify the best-bound correspondences; allow extra attempts when
        // nothing matched yet, but bound the worst case.
        if verified >= config.verified_gammas
            && ((best_q > 0 || best_t > 0) || verified >= config.verified_gammas * 2)
        {
            break;
        }
        verified += 1;
        let mut t_buckets: HashMap<(u64, u32), Vec<usize>> = HashMap::new();
        for (k, key) in ev.t_digests.iter().enumerate() {
            t_buckets.entry(*key).or_default().push(k);
        }
        let mut q_buckets: HashMap<(u64, u32), Vec<usize>> = HashMap::new();
        for (k, key) in ev.q_digests.iter().enumerate() {
            q_buckets.entry(*key).or_default().push(k);
        }
        let mut matched_q = 0usize;
        let mut matched_t_flags = vec![false; ev.t_term_list.len()];
        for (qi, qterm) in ev.q_term_list.iter().enumerate() {
            let mut hit = false;
            if let Some(cands) = t_buckets.get(&ev.q_digests[qi]) {
                for &tk in cands {
                    if session.check_eq(*qterm, ev.t_term_list[tk]) == Verdict::Equal {
                        hit = true;
                        matched_t_flags[tk] = true;
                        break;
                    }
                }
            }
            if hit {
                matched_q += 1;
            }
        }
        let mut matched_t = 0usize;
        for (tk, tterm) in ev.t_term_list.iter().enumerate() {
            if matched_t_flags[tk] {
                matched_t += 1;
                continue;
            }
            if let Some(cands) = q_buckets.get(&ev.t_digests[tk]) {
                if cands
                    .iter()
                    .any(|&qk| session.check_eq(*tterm, ev.q_term_list[qk]) == Verdict::Equal)
                {
                    matched_t += 1;
                }
            }
        }
        best_q = best_q.max(matched_q);
        best_t = best_t.max(matched_t);
        if best_q == q_temps.len() && best_t == t_temps.len() {
            break;
        }
    }
    VcpPair {
        q_in_t: best_q as f64 / q_temps.len() as f64,
        t_in_q: best_t as f64 / t_temps.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esh_asm::parse_proc;
    use esh_ivl::lift;

    fn lift_text(text: &str) -> Proc {
        let p = parse_proc(&format!("proc t\nentry:\n{text}")).expect("parses");
        lift("t", &p.blocks[0].insts)
    }

    fn quick_config() -> VcpConfig {
        VcpConfig {
            min_strand_vars: 1,
            ..VcpConfig::default()
        }
    }

    #[test]
    fn vcp_is_reflexively_one() {
        let s = lift_text("mov r13, rax\nlea rcx, [r13+0x3]\nshr rcx, 0x2");
        let mut session = VerifierSession::new();
        let v = vcp_pair(&mut session, &s, &s, &quick_config());
        assert_eq!(v.q_in_t, 1.0);
        assert_eq!(v.t_in_q, 1.0);
    }

    #[test]
    fn renamed_registers_fully_match() {
        // The paper's strand ③: same computation, different registers.
        let q = lift_text("mov r12, rbx\nlea rdi, [r12+0x3]");
        let t = lift_text("mov r13, rbx\nlea rcx, [r13+0x3]");
        let mut session = VerifierSession::new();
        let v = vcp_pair(&mut session, &q, &t, &quick_config());
        assert_eq!(v.q_in_t, 1.0);
        assert_eq!(v.t_in_q, 1.0);
    }

    #[test]
    fn figure3_asymmetry() {
        // Figure 3: VCP(sq, st) = 1 but VCP(st, sq) < 1 (the target
        // computes an extra intermediate value the query lacks).
        let q = lift_text("lea rax, [r12+0x13]");
        let t = lift_text("mov r9, 0x13\nmov r13, r12\nadd r13, r9\nadd r9, 0x5");
        let mut session = VerifierSession::new();
        let v = vcp_pair(&mut session, &q, &t, &quick_config());
        assert_eq!(v.q_in_t, 1.0, "every query value exists in the target");
        assert!(v.t_in_q < 1.0, "the 0x18 value has no query counterpart");
    }

    #[test]
    fn unrelated_strands_score_low() {
        let q = lift_text("mov rax, rdi\nimul rax, rax\nxor rax, 0x5a5a");
        let t = lift_text("mov rbx, rsi\nshr rbx, 0x3\nor rbx, 0x101");
        let mut session = VerifierSession::new();
        let v = vcp_pair(&mut session, &q, &t, &quick_config());
        assert!(v.q_in_t < 0.5, "got {v:?}");
    }

    #[test]
    fn cross_idiom_match_lea_vs_imul() {
        // gcc multiplies by 5 with lea, icc with imul: semantically equal
        // results. The lea strand also materializes the intermediate
        // `rdi*4`, which imul never computes, so VCP(q,t) is 2/3 — still
        // far above the unrelated-strand regime.
        let q = lift_text("lea rax, [rdi+rdi*4]");
        let t = lift_text("imul rax, rdi, 0x5");
        let mut session = VerifierSession::new();
        let v = vcp_pair(&mut session, &q, &t, &quick_config());
        assert!(v.q_in_t >= 0.6, "got {v:?}");
        // The final values agree, so the target's product is matched.
        assert!(v.t_in_q >= 0.3, "got {v:?}");
    }

    #[test]
    fn gamma_infeasible_when_query_has_more_inputs() {
        let q = lift_text("mov rax, rdi\nadd rax, rsi\nadd rax, rdx");
        let t = lift_text("mov rax, rdi\nadd rax, 0x5");
        let mut session = VerifierSession::new();
        let v = vcp_pair(&mut session, &q, &t, &quick_config());
        assert_eq!(v.q_in_t, 0.0);
    }

    #[test]
    fn size_ratio_filter() {
        let c = VcpConfig::default();
        assert!(size_ratio_ok(&c, 10, 10));
        assert!(size_ratio_ok(&c, 10, 20));
        assert!(size_ratio_ok(&c, 20, 10));
        assert!(!size_ratio_ok(&c, 10, 21));
        assert!(!size_ratio_ok(&c, 21, 10));
        assert!(!size_ratio_ok(&c, 0, 10));
    }

    #[test]
    fn different_compilers_same_source_high_vcp() {
        // A three-instruction computation in a gcc-ish and an icc-ish
        // flavour (staging moves, different registers, imul vs lea).
        let q = lift_text("mov eax, edi\nshr eax, 0x8\nlea rdx, [rax+0x13]");
        let t = lift_text("mov r9d, edi\nshr r9d, 0x8\nmov r10, r9\nadd r10, 0x13");
        let mut session = VerifierSession::new();
        let v = vcp_pair(&mut session, &q, &t, &quick_config());
        assert!(v.q_in_t >= 0.75, "got {v:?}");
    }
}
