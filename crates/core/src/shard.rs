//! Lazy target-segment shards behind the engine — the scale tier's
//! in-memory half.
//!
//! A sharded index (see `esh-index`) splits the corpus into contiguous
//! **target segments**. Because strand classes are created in target
//! insertion order, each segment also owns a contiguous range of class
//! indices: the classes first introduced by its targets. Everything a
//! query needs to *price* a pair — structural hash, variable count,
//! semantic signature, sketch, corpus count — stays eagerly loaded, while
//! the heavyweight per-class payload (the lifted IVL procedure and the
//! segment's slice of the persisted VCP cache) lives behind a
//! [`ShardSource`] and is pulled in only when some pair of that segment
//! survives pricing and actually needs the verifier or its memoized
//! result.
//!
//! Invariants the engine relies on (and the v5 round-trip proptest pins):
//!
//! * **Load-before-lookup.** A shard's persisted cache entries are
//!   inserted (counter-neutrally) the moment the shard loads, and the
//!   engine always loads a class's shard *before* the first counted
//!   cache lookup touching that class — so hit/miss counters are
//!   identical to an engine that had every entry resident from the start.
//! * **Merge = concatenation.** Shards partition the class index space in
//!   order, so the fanned-out VCP matrix is the unsharded matrix: every
//!   float sum (H0, GES, S-VCP) runs in the same order and produces the
//!   same bits.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use esh_ivl::Proc;
use esh_strands::Signature;

use crate::cache::{VcpCache, VcpCacheEntry};
use crate::engine::EngineConfig;
use crate::prefilter::SemanticSketch;

/// The contiguous target and class ranges one shard owns. Ranges are
/// half-open (`start..end`); consecutive shards tile both index spaces
/// without gaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// First class index owned by this shard.
    pub class_start: usize,
    /// One past the last class index owned by this shard.
    pub class_end: usize,
    /// First target index owned by this shard.
    pub target_start: usize,
    /// One past the last target index owned by this shard.
    pub target_end: usize,
}

/// What a [`ShardSource`] hands back for one shard: the lifted procedures
/// of its class range (in class-index order) and the persisted VCP-cache
/// entries whose class hash belongs to this segment.
#[derive(Debug)]
pub struct ShardPayload {
    /// Lifted procedures for `class_start..class_end`, in order.
    pub procs: Vec<Proc>,
    /// Persisted cache entries keyed into this segment.
    pub cache: Vec<VcpCacheEntry>,
}

/// Backing store for lazily-loaded shards (the on-disk v5 format in
/// `esh-index`, or an in-memory stand-in for tests).
pub trait ShardSource: Send + Sync + fmt::Debug {
    /// Loads shard `shard`'s payload. Called at most once per shard per
    /// engine; errors are fatal to the query that needed the shard.
    fn load_shard(&self, shard: usize) -> Result<ShardPayload, String>;
}

/// Point-in-time shard counters for an engine (all zero when the engine
/// is fully resident, i.e. not backed by a sharded index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Number of shards behind the engine.
    pub shards_total: u64,
    /// Shards whose payload has been pulled into memory.
    pub shards_loaded: u64,
    /// Total (query, shard) consultations: for each query (or batch
    /// item), every distinct shard whose payload the query needed —
    /// surviving pricing into a cache lookup, a probe sketch, or a
    /// refine-window scan.
    pub fanout_total: u64,
}

/// The engine's view of a sharded backing store: specs, one lazily
/// initialized slot per shard, and the gauges `/metrics` exports.
#[derive(Debug)]
pub(crate) struct LazyShards {
    specs: Vec<ShardSpec>,
    source: Box<dyn ShardSource>,
    slots: Vec<OnceLock<Vec<Proc>>>,
    loaded: AtomicU64,
    fanout: AtomicU64,
}

impl LazyShards {
    pub(crate) fn new(specs: Vec<ShardSpec>, source: Box<dyn ShardSource>) -> LazyShards {
        let slots = (0..specs.len()).map(|_| OnceLock::new()).collect();
        LazyShards {
            specs,
            source,
            slots,
            loaded: AtomicU64::new(0),
            fanout: AtomicU64::new(0),
        }
    }

    /// One past the highest class index any shard owns. Classes at or
    /// beyond this (added after the snapshot was opened) are resident in
    /// the engine itself.
    pub(crate) fn class_limit(&self) -> usize {
        self.specs.last().map_or(0, |s| s.class_end)
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.specs.len()
    }

    /// The shard owning class `ci` (callers guarantee `ci <
    /// class_limit()`).
    pub(crate) fn shard_of_class(&self, ci: usize) -> usize {
        self.specs.partition_point(|s| s.class_end <= ci)
    }

    /// Loads shard `shard` if it is not resident yet, inserting its
    /// persisted cache entries counter-neutrally.
    pub(crate) fn ensure_loaded(&self, shard: usize, cache: &VcpCache) {
        self.slots[shard].get_or_init(|| {
            let payload = self
                .source
                .load_shard(shard)
                .unwrap_or_else(|e| panic!("shard {shard} failed to load: {e}"));
            for e in &payload.cache {
                cache.insert((e.query_hash, e.class_hash, e.vcp_fingerprint), e.pair);
            }
            self.loaded.fetch_add(1, Ordering::Relaxed);
            payload.procs
        });
    }

    /// The lifted procedure of class `ci`, loading its shard on first
    /// use.
    pub(crate) fn proc(&self, ci: usize, cache: &VcpCache) -> &Proc {
        let shard = self.shard_of_class(ci);
        self.ensure_loaded(shard, cache);
        let procs = self.slots[shard].get().expect("shard just ensured");
        &procs[ci - self.specs[shard].class_start]
    }

    pub(crate) fn add_fanout(&self, n: u64) {
        self.fanout.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn stats(&self) -> ShardStats {
        ShardStats {
            shards_total: self.specs.len() as u64,
            shards_loaded: self.loaded.load(Ordering::Relaxed),
            fanout_total: self.fanout.load(Ordering::Relaxed),
        }
    }
}

/// Per-batch fan-out bookkeeping: one flag per `(batch item, shard)`
/// pair, set when that item's pricing survives into the shard's payload
/// (cache lookup, probe sketch, or refine scan). Counted once per pair at
/// batch end, whatever order the work-stealing workers touched it in.
#[derive(Debug)]
pub(crate) struct ShardTouch {
    flags: Vec<std::sync::atomic::AtomicBool>,
    nshards: usize,
}

impl ShardTouch {
    pub(crate) fn new(items: usize, nshards: usize) -> ShardTouch {
        ShardTouch {
            flags: (0..items * nshards)
                .map(|_| std::sync::atomic::AtomicBool::new(false))
                .collect(),
            nshards,
        }
    }

    pub(crate) fn mark(&self, item: usize, shard: usize) {
        if self.nshards != 0 {
            self.flags[item * self.nshards + shard].store(true, Ordering::Relaxed);
        }
    }

    /// Distinct `(item, shard)` pairs touched.
    pub(crate) fn count(&self) -> u64 {
        self.flags
            .iter()
            .filter(|f| f.load(Ordering::Relaxed))
            .count() as u64
    }
}

/// One strand class, fully materialized — the unit `esh-index` writes.
#[derive(Debug, Clone)]
pub struct ClassExport {
    /// Display name (the lifted procedure's diagnostic name).
    pub name: String,
    /// The lifted IVL procedure (the shard-resident payload).
    pub proc_: Proc,
    /// Semantic signature (eager pricing metadata).
    pub signature: Signature,
    /// Variable count of the lifted strand.
    pub vars: usize,
    /// Structural hash — the dedup and cache key.
    pub hash: u64,
    /// Total occurrences across the corpus (drives H0).
    pub corpus_count: u64,
    /// Semantic sketch, when the engine's sketch tier was on.
    pub sketch: Option<SemanticSketch>,
}

/// Pricing metadata of one strand class **without** its procedure — what
/// a sharded index keeps eagerly resident.
#[derive(Debug, Clone)]
pub struct LazyClassMeta {
    /// Display name.
    pub name: String,
    /// Semantic signature.
    pub signature: Signature,
    /// Variable count.
    pub vars: usize,
    /// Structural hash.
    pub hash: u64,
    /// Corpus-wide occurrence count.
    pub corpus_count: u64,
    /// Semantic sketch, if persisted.
    pub sketch: Option<SemanticSketch>,
}

/// One target record, as persisted.
#[derive(Debug, Clone)]
pub struct TargetExport {
    /// Target name.
    pub name: String,
    /// `(class index, occurrences in this target)`, in class order.
    pub strands: Vec<(usize, u64)>,
    /// Basic-block count of the original procedure.
    pub basic_blocks: usize,
}

/// A full dump of an engine's corpus state — the exchange format between
/// the engine and the `esh-index` writer.
#[derive(Debug, Clone)]
pub struct CorpusExport {
    /// Engine configuration (fingerprint-relevant knobs included).
    pub config: EngineConfig,
    /// Every strand class, materialized, in class-index order.
    pub classes: Vec<ClassExport>,
    /// Every target, in insertion order.
    pub targets: Vec<TargetExport>,
    /// Every memoized VCP-cache entry, sorted by key.
    pub cache: Vec<VcpCacheEntry>,
}
