//! Lazy target-segment shards behind the engine — the scale tier's
//! in-memory half.
//!
//! A sharded index (see `esh-index`) splits the corpus into contiguous
//! **target segments**. Because strand classes are created in target
//! insertion order, each segment also owns a contiguous range of class
//! indices: the classes first introduced by its targets. Everything a
//! query needs to *price* a pair — structural hash, variable count,
//! semantic signature, sketch, corpus count — stays eagerly loaded, while
//! the heavyweight per-class payload (the lifted IVL procedure and the
//! segment's slice of the persisted VCP cache) lives behind a
//! [`ShardSource`] and is pulled in only when some pair of that segment
//! survives pricing and actually needs the verifier or its memoized
//! result. Residency is two-level: *opening* a shard decodes only its
//! structural parts (offset table, cache segment) and keeps the record
//! bytes raw behind a [`ShardRecords`] handle; each class record is
//! checksummed and decoded individually, on first demand, into a
//! per-class slot table.
//!
//! Invariants the engine relies on (and the round-trip proptests pin):
//!
//! * **Open-before-lookup.** A shard's persisted cache entries are
//!   inserted (counter-neutrally) the moment the shard opens, and the
//!   engine always opens a class's shard *before* the first counted
//!   cache lookup touching that class — so hit/miss counters are
//!   identical to an engine that had every entry resident from the start.
//!   Procedure records then decode strictly later, on the first cell
//!   that actually needs the verifier (a decode never touches a
//!   counter), which is what makes per-record demand decoding invisible
//!   to the counters. Re-inserting the same segment after an
//!   eviction/reopen cycle is idempotent (same keys, same deterministic
//!   values), so the rule survives memory-bounded serving unchanged.
//! * **Merge = concatenation.** Shards partition the class index space in
//!   order, so the fanned-out VCP matrix is the unsharded matrix: every
//!   float sum (H0, GES, S-VCP) runs in the same order and produces the
//!   same bits.
//! * **Pruning may only skip certain misses.** A shard may be skipped for
//!   a query item only when the band summary proves every one of its
//!   cells would have been sketch-pruned anyway (see
//!   [`ShardBandSummary::can_skip`]) — the skipped cells stay at
//!   `VcpPair::default()` exactly as the priced path would have left
//!   them.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use esh_ivl::Proc;
use esh_strands::{stable_mix, Signature, STABLE_HASH_SEED};

use crate::cache::{VcpCache, VcpCacheEntry};
use crate::engine::EngineConfig;
use crate::prefilter::SemanticSketch;

/// The contiguous target and class ranges one shard owns. Ranges are
/// half-open (`start..end`); consecutive shards tile both index spaces
/// without gaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// First class index owned by this shard.
    pub class_start: usize,
    /// One past the last class index owned by this shard.
    pub class_end: usize,
    /// First target index owned by this shard.
    pub target_start: usize,
    /// One past the last target index owned by this shard.
    pub target_end: usize,
}

/// An opened shard: the structural parts (offset table, persisted cache
/// segment) are decoded eagerly, the per-class procedure records stay
/// raw — typically borrowed straight out of an `Mmap` the handle keeps
/// alive — until [`ShardRecords::decode_record`] is asked for one.
///
/// A handle is held resident for as long as its shard occupies a slot,
/// so for file-backed sources the mapping outlives every query that
/// decoded from it.
pub trait ShardRecords: Send + Sync + fmt::Debug {
    /// Number of class records in the shard (its spec's class range).
    fn class_count(&self) -> usize;

    /// Persisted VCP-cache entries keyed into this segment, decoded at
    /// open so load-before-lookup can insert them before any counted
    /// lookup touches the segment.
    fn cache_entries(&self) -> &[VcpCacheEntry];

    /// Bytes decoded eagerly at open (header, offset table, cache
    /// segment) — accounted against the residency budget when the shard
    /// is opened.
    fn base_bytes(&self) -> u64;

    /// Bytes the handle keeps mapped (or buffered) while resident — the
    /// whole backing file for the on-disk format. Kernel-managed pages,
    /// *not* accounted against the residency budget.
    fn mapped_bytes(&self) -> u64;

    /// Encoded size of record `i` — the unit one decoded slot accounts
    /// against the residency budget.
    fn record_bytes(&self, i: usize) -> u64;

    /// Checksum-verifies and decodes record `i` (class `class_start +
    /// i`) out of the raw bytes, leaving every neighbour record
    /// untouched. Errors name the backing file and the class for
    /// file-backed sources.
    fn decode_record(&self, i: usize) -> Result<Proc, String>;
}

/// A shard failed to load or decode. `detail` carries the source's
/// description, including the backing file path for on-disk sources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardError {
    /// Index of the shard that failed.
    pub shard: usize,
    /// Human-readable cause, path included for file-backed sources.
    pub detail: String,
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard {} corrupted or unreadable: {}", self.shard, self.detail)
    }
}

impl std::error::Error for ShardError {}

/// Backing store for lazily-loaded shards (the on-disk format in
/// `esh-index`, or an in-memory stand-in for tests).
pub trait ShardSource: Send + Sync + fmt::Debug {
    /// Opens shard `shard` for per-record demand decoding: structural
    /// parts verified and decoded now, procedure records decoded on
    /// first touch. Under a memory budget a shard may be evicted and
    /// opened again later, so this must be repeatable; errors fail the
    /// query that needed the shard (other shards keep serving).
    fn open_shard(&self, shard: usize) -> Result<Box<dyn ShardRecords>, String>;

    /// Expected backing size of `shard` in bytes, when the source knows
    /// it without opening (the manifest records per-shard file sizes).
    fn shard_bytes(&self, shard: usize) -> Option<u64> {
        let _ = shard;
        None
    }
}

/// Point-in-time shard counters for an engine (all zero when the engine
/// is fully resident, i.e. not backed by a sharded index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Number of shards behind the engine.
    pub shards_total: u64,
    /// Shards currently resident in memory (loads minus evictions).
    pub shards_loaded: u64,
    /// Total (query, shard) consultations: for each query (or batch
    /// item), every distinct shard whose payload the query needed —
    /// surviving pricing into a cache lookup, a probe sketch, or a
    /// refine-window scan.
    pub fanout_total: u64,
    /// Shards evicted to stay under the memory budget (cumulative).
    pub evicted_total: u64,
    /// Bytes of *decoded* shard payload currently resident (per-class
    /// decoded records plus each open shard's structural base) — the
    /// unit the eviction budget accounts in.
    pub resident_bytes: u64,
    /// High-water mark of `resident_bytes`.
    pub resident_bytes_peak: u64,
    /// `(query item, shard)` pairs skipped entirely by band-summary
    /// pruning (cumulative).
    pub pruned_total: u64,
    /// Encoded bytes of the class records currently decoded (excludes
    /// the structural base `resident_bytes` also carries).
    pub decoded_bytes: u64,
    /// Backing bytes kept mapped (or buffered) by currently-open shards.
    /// Kernel-managed for mmap-backed sources; never budget-accounted.
    pub mapped_bytes: u64,
    /// Class records demand-decoded over the engine's lifetime
    /// (re-decodes after an eviction count again).
    pub classes_decoded_total: u64,
    /// Currently-open shards with at least one decoded and at least one
    /// still-raw record — direct evidence decode stayed sub-shard.
    pub shards_partial: u64,
}

/// A compact Bloom filter over 64-bit keys, used for shard band
/// summaries. No false negatives: [`Bloom::may_contain`] returning
/// `false` proves the key was never inserted.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bloom {
    /// The bit array, 64 bits per word.
    pub bits: Vec<u64>,
}

/// Bloom probe count. With ~12 bits per key (see [`Bloom::with_capacity`])
/// four probes put the false-positive rate near 0.5% — a false positive
/// only costs a missed prune, never correctness.
const BLOOM_PROBES: u64 = 4;

impl Bloom {
    /// An empty filter sized for `keys` insertions at ~12 bits per key
    /// (minimum one word). An empty `Bloom::default()` contains nothing.
    pub fn with_capacity(keys: usize) -> Bloom {
        let words = (keys * 12).div_ceil(64).max(1);
        Bloom {
            bits: vec![0u64; words],
        }
    }

    fn probes(&self, key: u64) -> impl Iterator<Item = (usize, u64)> {
        let nbits = self.bits.len() as u64 * 64;
        let h1 = stable_mix(STABLE_HASH_SEED ^ 0xb10f_11a5, key);
        let h2 = stable_mix(STABLE_HASH_SEED ^ 0x5eed_b055, key) | 1;
        (0..BLOOM_PROBES).map(move |i| {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % nbits;
            ((bit / 64) as usize, 1u64 << (bit % 64))
        })
    }

    /// Inserts `key`.
    pub fn insert(&mut self, key: u64) {
        if self.bits.is_empty() {
            self.bits = vec![0u64; 1];
        }
        for (word, mask) in self.probes(key) {
            self.bits[word] |= mask;
        }
    }

    /// True when `key` *may* have been inserted; `false` is definitive.
    pub fn may_contain(&self, key: u64) -> bool {
        if self.bits.is_empty() {
            return false;
        }
        self.probes(key).all(|(word, mask)| self.bits[word] & mask != 0)
    }
}

/// Per-shard sketch-band summary: Bloom filters over every member
/// class's sketch digests and LSH band keys, plus the two scalars the
/// class-side containment bound needs, written by
/// `esh-index::write_sharded` and consulted at query time to skip whole
/// shards before fan-out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardBandSummary {
    /// Bloom over the sketch digests of every class in the shard.
    pub digests: Bloom,
    /// Bloom over the LSH band keys of every class in the shard.
    pub bands: Bloom,
    /// True when *every* class in the shard had a persisted sketch at
    /// write time. When false the summary is incomplete and the shard is
    /// never skipped.
    pub complete: bool,
    /// Smallest digest count over member classes with a non-empty digest
    /// list (`u64::MAX` when every member is empty) — the denominator of
    /// the class-side containment bound.
    pub min_digests: u64,
    /// Largest multiplicity of a single digest value *within one* member
    /// class — the multiplier of the class-side containment bound.
    pub max_mult: u64,
}

impl Default for ShardBandSummary {
    fn default() -> ShardBandSummary {
        ShardBandSummary {
            digests: Bloom::default(),
            bands: Bloom::default(),
            complete: false,
            min_digests: u64::MAX,
            max_mult: 0,
        }
    }
}

impl ShardBandSummary {
    /// Builds a summary over `sketches` (one per class in the shard,
    /// `None` for classes without a persisted sketch) with LSH geometry
    /// `bands × rows`.
    pub fn build<'a>(
        sketches: impl Iterator<Item = Option<&'a SemanticSketch>>,
        bands: usize,
        rows: usize,
    ) -> ShardBandSummary {
        let sketches: Vec<_> = sketches.collect();
        let complete = sketches.iter().all(|s| s.is_some());
        let present: Vec<&SemanticSketch> = sketches.into_iter().flatten().collect();
        let digest_keys: usize = present.iter().map(|s| s.digests.len()).sum();
        let mut summary = ShardBandSummary {
            digests: Bloom::with_capacity(digest_keys),
            bands: Bloom::with_capacity(present.len() * bands),
            complete,
            ..ShardBandSummary::default()
        };
        for s in present {
            for &d in &s.digests {
                summary.digests.insert(d);
            }
            for k in s.band_keys(bands, rows) {
                summary.bands.insert(k);
            }
            if !s.digests.is_empty() {
                summary.min_digests = summary.min_digests.min(s.digests.len() as u64);
                // Digests are sorted, so multiplicity is run length.
                let (mut run, mut mult) = (1u64, 1u64);
                for w in s.digests.windows(2) {
                    if w[0] == w[1] {
                        run += 1;
                        mult = mult.max(run);
                    } else {
                        run = 1;
                    }
                }
                summary.max_mult = summary.max_mult.max(mult);
            }
        }
        summary
    }

    /// Whether every cell pairing `sketch` with this shard's classes is
    /// guaranteed to be sketch-pruned, so the shard can be skipped for
    /// this strand without touching it.
    ///
    /// The proof mirrors the staged pricing ladder (`bounds_decision`,
    /// which prunes a cell when both containment bounds fall below
    /// `margin - window`) by *counting* possibly-shared digests instead
    /// of demanding zero intersection. For any member class `t` and the
    /// query strand `q`:
    ///
    /// * query-side: every digest entry of `q` matched inside `t` has a
    ///   value the digest Bloom contains (no false negatives), so
    ///   `c_q = matched/|q| <= hits/|q|` where `hits` counts `q`'s
    ///   entries (with multiplicity) the Bloom may contain;
    /// * class-side: every entry of `t` matched inside `q` has a value
    ///   that is both a distinct Bloom-positive digest of `q` and repeats
    ///   at most [`ShardBandSummary::max_mult`] times within `t`, so
    ///   `c_t = matched/|t| <= distinct_hits * max_mult / min_digests`
    ///   (classes with no digests have `c_t = 0` by definition).
    ///
    /// Both bounds below the threshold proves every cell prices to
    /// `Prune`. Under the pre-probe rule (`window == 0`) *collided* cells
    /// skip pricing and go straight to the exact path, so the band Bloom
    /// must additionally prove no class shares an LSH band with the
    /// query.
    ///
    /// Bloom false positives only ever answer "may collide", which keeps
    /// the shard in the fan-out — pruning is conservative by
    /// construction.
    pub fn can_skip(
        &self,
        sketch: &SemanticSketch,
        band_keys: &[u64],
        margin: f64,
        window: f64,
    ) -> bool {
        if !self.complete {
            return false;
        }
        let threshold = margin - window;
        if threshold <= 0.0 {
            return false;
        }
        let ds = &sketch.digests;
        let (mut hits, mut distinct_hits) = (0u64, 0u64);
        let mut i = 0;
        while i < ds.len() {
            let mut j = i + 1;
            while j < ds.len() && ds[j] == ds[i] {
                j += 1;
            }
            if self.digests.may_contain(ds[i]) {
                hits += (j - i) as u64;
                distinct_hits += 1;
            }
            i = j;
        }
        let c_q = if ds.is_empty() {
            0.0
        } else {
            hits as f64 / ds.len() as f64
        };
        let c_t = if self.min_digests == u64::MAX {
            0.0
        } else {
            ((distinct_hits * self.max_mult) as f64 / self.min_digests as f64).min(1.0)
        };
        if c_q.max(c_t) >= threshold {
            return false;
        }
        window > 0.0 || band_keys.iter().all(|k| !self.bands.may_contain(*k))
    }
}

/// One open shard: the records handle (which keeps the backing mapping
/// alive) plus a per-class slot table. Each slot is either **decoded**
/// (`Some(Arc<Proc>)`) or still **raw** (`None` — the record's bytes sit
/// undecoded behind the handle; an absent/corrupt record stays `None`
/// and re-errors on every decode attempt). Handed out as an `Arc` so
/// eviction can drop the shard's slot while in-flight readers keep their
/// decoded procedures alive.
#[derive(Debug)]
pub(crate) struct ShardResident {
    records: Box<dyn ShardRecords>,
    slots: Vec<RwLock<Option<Arc<Proc>>>>,
    class_start: usize,
    /// Bytes this shard currently accounts against the budget (base +
    /// decoded records). Zeroed by eviction; late decoders that add after
    /// the zeroing hand their contribution straight back (see
    /// `retired`).
    accounted: AtomicU64,
    /// Encoded bytes of currently-decoded records (the `decoded_bytes`
    /// gauge's per-shard share).
    decoded: AtomicU64,
    /// Count of decoded slots (drives the partially-decoded gauge).
    decoded_slots: AtomicU64,
    /// Set once the shard was evicted: the slot no longer holds this
    /// resident, so any decode that races past the eviction must not
    /// leave bytes accounted.
    retired: std::sync::atomic::AtomicBool,
}

impl ShardResident {
    fn decoded_slot_count(&self) -> u64 {
        self.decoded_slots.load(Ordering::Relaxed)
    }
}

/// A checked-out reference to one demand-decoded procedure. Dereferences
/// to [`Proc`]; holding it pins the decoded record (not its shard slot)
/// in memory across evictions.
#[derive(Debug)]
pub(crate) struct ShardProcRef {
    proc_: Arc<Proc>,
}

impl std::ops::Deref for ShardProcRef {
    type Target = Proc;

    fn deref(&self) -> &Proc {
        &self.proc_
    }
}

/// The engine's view of a sharded backing store: specs, one slot per
/// shard (evictable under a byte budget), optional band summaries for
/// pruning, and the gauges `/metrics` exports.
#[derive(Debug)]
pub(crate) struct LazyShards {
    specs: Vec<ShardSpec>,
    source: Box<dyn ShardSource>,
    slots: Vec<RwLock<Option<Arc<ShardResident>>>>,
    /// Per-shard band summaries (pruning disabled while `None`).
    pub(crate) summaries: Option<Vec<ShardBandSummary>>,
    /// Whole-decode compatibility mode: decode every record at open
    /// (the pre-demand-decode behaviour, kept as the bench baseline and
    /// the `--whole-decode` escape hatch).
    pub(crate) eager: bool,
    /// Resident-bytes budget; 0 means unbounded.
    budget: AtomicU64,
    /// Monotonic LRU clock; `stamps[i]` is shard `i`'s last touch.
    clock: AtomicU64,
    stamps: Vec<AtomicU64>,
    loaded: AtomicU64,
    resident: AtomicU64,
    resident_peak: AtomicU64,
    evicted: AtomicU64,
    fanout: AtomicU64,
    pruned: AtomicU64,
    decoded: AtomicU64,
    mapped: AtomicU64,
    classes_decoded: AtomicU64,
}

impl LazyShards {
    pub(crate) fn new(specs: Vec<ShardSpec>, source: Box<dyn ShardSource>) -> LazyShards {
        let slots = (0..specs.len()).map(|_| RwLock::new(None)).collect();
        let stamps = (0..specs.len()).map(|_| AtomicU64::new(0)).collect();
        LazyShards {
            specs,
            source,
            slots,
            summaries: None,
            eager: false,
            budget: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            stamps,
            loaded: AtomicU64::new(0),
            resident: AtomicU64::new(0),
            resident_peak: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            fanout: AtomicU64::new(0),
            pruned: AtomicU64::new(0),
            decoded: AtomicU64::new(0),
            mapped: AtomicU64::new(0),
            classes_decoded: AtomicU64::new(0),
        }
    }

    /// One past the highest class index any shard owns. Classes at or
    /// beyond this (added after the snapshot was opened) are resident in
    /// the engine itself.
    pub(crate) fn class_limit(&self) -> usize {
        self.specs.last().map_or(0, |s| s.class_end)
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.specs.len()
    }

    /// The shard owning class `ci` (callers guarantee `ci <
    /// class_limit()`).
    pub(crate) fn shard_of_class(&self, ci: usize) -> usize {
        self.specs.partition_point(|s| s.class_end <= ci)
    }

    /// Sets the resident-bytes budget (0 = unbounded) and immediately
    /// evicts down to it.
    pub(crate) fn set_budget(&self, bytes: u64) {
        self.budget.store(bytes, Ordering::Relaxed);
        if bytes > 0 {
            self.evict_to(bytes, usize::MAX);
        }
    }

    /// Reserves `need` bytes against the budget on behalf of `shard`,
    /// evicting least-recently-used *other* shards to make room.
    /// Concurrent reservers race on the shared `resident` counter itself,
    /// so the sum of reservations — and with it the resident peak — stays
    /// within budget whenever eviction can make room; when nothing is
    /// evictable the reservation proceeds over budget rather than
    /// deadlock.
    fn reserve(&self, need: u64, shard: usize) {
        let budget = self.budget.load(Ordering::Relaxed);
        if budget == 0 {
            let now = self.resident.fetch_add(need, Ordering::Relaxed) + need;
            self.resident_peak.fetch_max(now, Ordering::Relaxed);
            return;
        }
        loop {
            let cur = self.resident.load(Ordering::Relaxed);
            if cur + need <= budget {
                if self
                    .resident
                    .compare_exchange(cur, cur + need, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    self.resident_peak.fetch_max(cur + need, Ordering::Relaxed);
                    return;
                }
            } else if !self.evict_to(budget.saturating_sub(need), shard) {
                let now = self.resident.fetch_add(need, Ordering::Relaxed) + need;
                self.resident_peak.fetch_max(now, Ordering::Relaxed);
                return;
            }
        }
    }

    /// Opens shard `shard` if it is not resident — structural parts
    /// decoded and checksummed, every procedure record left raw —
    /// inserting its persisted cache entries counter-neutrally
    /// (load-before-lookup covers the cache segment, which is why opening
    /// alone satisfies the invariant), and returns a handle pinning the
    /// records. Only the structural base is budget-accounted here;
    /// records account as they decode. In `eager` mode every record is
    /// decoded before the handle is returned (the whole-decode baseline).
    pub(crate) fn ensure_loaded(
        &self,
        shard: usize,
        cache: &VcpCache,
    ) -> Result<Arc<ShardResident>, ShardError> {
        self.stamps[shard].store(
            self.clock.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
        if let Some(r) = self
            .slots[shard]
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
        {
            return Ok(Arc::clone(r));
        }
        let mut slot = self.slots[shard].write().unwrap_or_else(|e| e.into_inner());
        if let Some(r) = slot.as_ref() {
            return Ok(Arc::clone(r));
        }
        let records = self
            .source
            .open_shard(shard)
            .map_err(|detail| ShardError { shard, detail })?;
        for e in records.cache_entries() {
            cache.insert((e.query_hash, e.class_hash, e.vcp_fingerprint), e.pair);
        }
        let base = records.base_bytes();
        self.reserve(base, shard);
        self.mapped.fetch_add(records.mapped_bytes(), Ordering::Relaxed);
        let resident = Arc::new(ShardResident {
            slots: (0..records.class_count()).map(|_| RwLock::new(None)).collect(),
            records,
            class_start: self.specs[shard].class_start,
            accounted: AtomicU64::new(base),
            decoded: AtomicU64::new(0),
            decoded_slots: AtomicU64::new(0),
            retired: std::sync::atomic::AtomicBool::new(false),
        });
        self.loaded.fetch_add(1, Ordering::Relaxed);
        *slot = Some(Arc::clone(&resident));
        drop(slot);
        if self.eager {
            for i in 0..resident.records.class_count() {
                self.decode_slot(shard, &resident, i)?;
            }
        }
        Ok(resident)
    }

    /// Checksum-verifies and decodes record `idx` of an open shard if its
    /// slot is still raw, accounting the record's encoded bytes against
    /// the budget (evicting other shards as needed). A decode error is
    /// returned — never latched — so a repaired file recovers on retry.
    fn decode_slot(
        &self,
        shard: usize,
        r: &Arc<ShardResident>,
        idx: usize,
    ) -> Result<Arc<Proc>, ShardError> {
        if let Some(p) = r.slots[idx].read().unwrap_or_else(|e| e.into_inner()).as_ref() {
            return Ok(Arc::clone(p));
        }
        let mut slot = r.slots[idx].write().unwrap_or_else(|e| e.into_inner());
        if let Some(p) = slot.as_ref() {
            return Ok(Arc::clone(p));
        }
        let need = r.records.record_bytes(idx);
        self.reserve(need, shard);
        let proc_ = match r.records.decode_record(idx) {
            Ok(p) => Arc::new(p),
            Err(detail) => {
                self.resident.fetch_sub(need, Ordering::Relaxed);
                return Err(ShardError { shard, detail });
            }
        };
        // Globals first, then the per-shard counters an eviction hands
        // back: an evictor can only ever subtract bytes whose global add
        // already happened.
        self.decoded.fetch_add(need, Ordering::Relaxed);
        self.classes_decoded.fetch_add(1, Ordering::Relaxed);
        r.accounted.fetch_add(need, Ordering::Relaxed);
        r.decoded.fetch_add(need, Ordering::Relaxed);
        r.decoded_slots.fetch_add(1, Ordering::Relaxed);
        *slot = Some(Arc::clone(&proc_));
        if r.retired.load(Ordering::Relaxed) {
            // The shard was evicted while this record decoded: the
            // eviction already handed back whatever `accounted`/`decoded`
            // held when it ran, so return whatever this (and any other
            // late) decode added after the zeroing.
            let a = r.accounted.swap(0, Ordering::Relaxed);
            let d = r.decoded.swap(0, Ordering::Relaxed);
            self.resident.fetch_sub(a, Ordering::Relaxed);
            self.decoded.fetch_sub(d, Ordering::Relaxed);
        }
        Ok(proc_)
    }

    /// Evicts least-recently-touched resident shards until
    /// `resident_bytes <= target`, never touching `except` (the shard the
    /// caller is serving) or any slot another thread holds locked.
    /// Evicting a shard drops every decoded slot *and* unmaps its backing
    /// bytes; in-flight readers holding `Arc<Proc>`s keep exactly those
    /// decoded records alive until they let go. Returns whether at least
    /// one shard was evicted by this call.
    fn evict_to(&self, target: u64, except: usize) -> bool {
        let mut banned = vec![false; self.slots.len()];
        if except < banned.len() {
            banned[except] = true;
        }
        let mut any = false;
        while self.resident.load(Ordering::Relaxed) > target {
            let mut victim: Option<(u64, usize)> = None;
            for (i, slot) in self.slots.iter().enumerate() {
                if banned[i] {
                    continue;
                }
                let occupied = matches!(slot.try_read(), Ok(g) if g.is_some());
                if !occupied {
                    continue;
                }
                let stamp = self.stamps[i].load(Ordering::Relaxed);
                if victim.is_none_or(|(s, _)| stamp < s) {
                    victim = Some((stamp, i));
                }
            }
            let Some((_, i)) = victim else { break };
            if let Ok(mut g) = self.slots[i].try_write() {
                if let Some(r) = g.take() {
                    // Mark first, then swap the counters out: a decode
                    // racing past this point sees `retired` and hands its
                    // own late contribution back itself.
                    r.retired.store(true, Ordering::Relaxed);
                    let a = r.accounted.swap(0, Ordering::Relaxed);
                    let d = r.decoded.swap(0, Ordering::Relaxed);
                    self.resident.fetch_sub(a, Ordering::Relaxed);
                    self.decoded.fetch_sub(d, Ordering::Relaxed);
                    self.mapped
                        .fetch_sub(r.records.mapped_bytes(), Ordering::Relaxed);
                    self.loaded.fetch_sub(1, Ordering::Relaxed);
                    self.evicted.fetch_add(1, Ordering::Relaxed);
                    any = true;
                }
            }
            banned[i] = true;
        }
        any
    }

    /// A pinned reference to the lifted procedure of class `ci`, opening
    /// its shard (again, if evicted) and demand-decoding exactly that
    /// record.
    pub(crate) fn proc_ref(&self, ci: usize, cache: &VcpCache) -> Result<ShardProcRef, ShardError> {
        let shard = self.shard_of_class(ci);
        let resident = self.ensure_loaded(shard, cache)?;
        let proc_ = self.decode_slot(shard, &resident, ci - resident.class_start)?;
        Ok(ShardProcRef { proc_ })
    }

    pub(crate) fn add_fanout(&self, n: u64) {
        self.fanout.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_pruned(&self, n: u64) {
        self.pruned.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn stats(&self) -> ShardStats {
        // Partially-decoded shards are counted by scanning the open
        // slots; `try_read` keeps the scan non-blocking (a slot mid-load
        // is simply not counted this round).
        let mut partial = 0u64;
        for slot in &self.slots {
            if let Ok(g) = slot.try_read() {
                if let Some(r) = g.as_ref() {
                    let d = r.decoded_slot_count() as usize;
                    if d > 0 && d < r.records.class_count() {
                        partial += 1;
                    }
                }
            }
        }
        ShardStats {
            shards_total: self.specs.len() as u64,
            shards_loaded: self.loaded.load(Ordering::Relaxed),
            fanout_total: self.fanout.load(Ordering::Relaxed),
            evicted_total: self.evicted.load(Ordering::Relaxed),
            resident_bytes: self.resident.load(Ordering::Relaxed),
            resident_bytes_peak: self.resident_peak.load(Ordering::Relaxed),
            pruned_total: self.pruned.load(Ordering::Relaxed),
            decoded_bytes: self.decoded.load(Ordering::Relaxed),
            mapped_bytes: self.mapped.load(Ordering::Relaxed),
            classes_decoded_total: self.classes_decoded.load(Ordering::Relaxed),
            shards_partial: partial,
        }
    }
}

/// Per-batch fan-out bookkeeping: one flag per `(batch item, shard)`
/// pair, set when that item's pricing survives into the shard's payload
/// (cache lookup, probe sketch, or refine scan). Counted once per pair at
/// batch end, whatever order the work-stealing workers touched it in.
#[derive(Debug)]
pub(crate) struct ShardTouch {
    flags: Vec<std::sync::atomic::AtomicBool>,
    nshards: usize,
}

impl ShardTouch {
    pub(crate) fn new(items: usize, nshards: usize) -> ShardTouch {
        ShardTouch {
            flags: (0..items * nshards)
                .map(|_| std::sync::atomic::AtomicBool::new(false))
                .collect(),
            nshards,
        }
    }

    pub(crate) fn mark(&self, item: usize, shard: usize) {
        if self.nshards != 0 {
            self.flags[item * self.nshards + shard].store(true, Ordering::Relaxed);
        }
    }

    /// Distinct `(item, shard)` pairs touched.
    pub(crate) fn count(&self) -> u64 {
        self.flags
            .iter()
            .filter(|f| f.load(Ordering::Relaxed))
            .count() as u64
    }
}

/// One strand class, fully materialized — the unit `esh-index` writes.
#[derive(Debug, Clone)]
pub struct ClassExport {
    /// Display name (the lifted procedure's diagnostic name).
    pub name: String,
    /// The lifted IVL procedure (the shard-resident payload).
    pub proc_: Proc,
    /// Semantic signature (eager pricing metadata).
    pub signature: Signature,
    /// Variable count of the lifted strand.
    pub vars: usize,
    /// Structural hash — the dedup and cache key.
    pub hash: u64,
    /// Total occurrences across the corpus (drives H0).
    pub corpus_count: u64,
    /// Semantic sketch, when the engine's sketch tier was on.
    pub sketch: Option<SemanticSketch>,
}

/// Pricing metadata of one strand class **without** its procedure — what
/// a sharded index keeps eagerly resident.
#[derive(Debug, Clone)]
pub struct LazyClassMeta {
    /// Display name.
    pub name: String,
    /// Semantic signature.
    pub signature: Signature,
    /// Variable count.
    pub vars: usize,
    /// Structural hash.
    pub hash: u64,
    /// Corpus-wide occurrence count.
    pub corpus_count: u64,
    /// Semantic sketch, if persisted.
    pub sketch: Option<SemanticSketch>,
}

/// One target record, as persisted.
#[derive(Debug, Clone)]
pub struct TargetExport {
    /// Target name.
    pub name: String,
    /// `(class index, occurrences in this target)`, in class order.
    pub strands: Vec<(usize, u64)>,
    /// Basic-block count of the original procedure.
    pub basic_blocks: usize,
}

/// A full dump of an engine's corpus state — the exchange format between
/// the engine and the `esh-index` writer.
#[derive(Debug, Clone)]
pub struct CorpusExport {
    /// Engine configuration (fingerprint-relevant knobs included).
    pub config: EngineConfig,
    /// Every strand class, materialized, in class-index order.
    pub classes: Vec<ClassExport>,
    /// Every target, in insertion order.
    pub targets: Vec<TargetExport>,
    /// Every memoized VCP-cache entry, sorted by key.
    pub cache: Vec<VcpCacheEntry>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bloom_has_no_false_negatives_and_empty_contains_nothing() {
        let mut b = Bloom::with_capacity(100);
        let keys: Vec<u64> = (0..100u64).map(|i| stable_mix(7, i)).collect();
        for &k in &keys {
            b.insert(k);
        }
        assert!(keys.iter().all(|&k| b.may_contain(k)));
        assert!(!Bloom::default().may_contain(42));
        // With ~12 bits/key the filter must reject the vast majority of
        // absent keys.
        let misses = (1000..3000u64)
            .map(|i| stable_mix(13, i))
            .filter(|&k| !b.may_contain(k))
            .count();
        assert!(misses > 1900, "false-positive rate too high: {misses}/2000 rejected");
    }

    #[test]
    fn incomplete_summary_never_skips() {
        let s = SemanticSketch {
            digests: vec![1, 2, 3],
            minhash: vec![9; 16],
        };
        let summary = ShardBandSummary::build([Some(&s), None].into_iter(), 4, 4);
        assert!(!summary.complete);
        let other = SemanticSketch {
            digests: vec![777],
            minhash: vec![5; 16],
        };
        assert!(!summary.can_skip(&other, &other.band_keys(4, 4), 0.7, 0.2));
    }

    #[test]
    fn summary_skips_disjoint_sketches_and_keeps_overlapping_ones() {
        let member = SemanticSketch {
            digests: vec![10, 20, 30],
            minhash: vec![3; 16],
        };
        let summary = ShardBandSummary::build([Some(&member)].into_iter(), 4, 4);
        assert!(summary.complete);
        assert_eq!(summary.min_digests, 3);
        assert_eq!(summary.max_mult, 1);

        let disjoint = SemanticSketch {
            digests: vec![100, 200],
            minhash: vec![4; 16],
        };
        // window > 0: digest disjointness is what proves the prune.
        assert!(summary.can_skip(&disjoint, &disjoint.band_keys(4, 4), 0.7, 0.2));
        // window == 0: identical minhash rows collide on every band, so
        // the shard must stay in the fan-out for the member itself.
        assert!(!summary.can_skip(&member, &member.band_keys(4, 4), 0.7, 0.0));
        // Sharing two of three digests pushes the class-side bound to
        // 2/3 >= 0.5, which keeps the shard (window > 0).
        let overlapping = SemanticSketch {
            digests: vec![20, 30, 999],
            minhash: vec![4; 16],
        };
        assert!(!summary.can_skip(&overlapping, &overlapping.band_keys(4, 4), 0.7, 0.2));
    }

    #[test]
    fn counting_rule_skips_small_overlap_but_respects_tiny_classes() {
        // One ten-digest class: a single shared digest gives bounds
        // c_q <= 1/5 and c_t <= 1/10, both under 0.7 - 0.2.
        let wide = SemanticSketch {
            digests: (0..10).map(|i| 100 + i).collect(),
            minhash: vec![3; 16],
        };
        let summary = ShardBandSummary::build([Some(&wide)].into_iter(), 4, 4);
        let query = SemanticSketch {
            digests: vec![100, 900, 901, 902, 903],
            minhash: vec![4; 16],
        };
        assert!(summary.can_skip(&query, &query.band_keys(4, 4), 0.7, 0.2));

        // Adding a two-digest member drops min_digests to 2: the same
        // single shared digest now allows c_t = 1/2, at the threshold —
        // the shard must stay.
        let tiny = SemanticSketch {
            digests: vec![100, 101],
            minhash: vec![5; 16],
        };
        let summary = ShardBandSummary::build([Some(&wide), Some(&tiny)].into_iter(), 4, 4);
        assert_eq!(summary.min_digests, 2);
        assert!(!summary.can_skip(&query, &query.band_keys(4, 4), 0.7, 0.2));
    }

    #[test]
    fn repeated_digests_raise_the_class_side_bound() {
        // max_mult = 3: one Bloom-positive distinct digest can match
        // three entries of a member class, so c_t <= 3/4 blocks the skip
        // even though the query-side bound 1/6 is tiny.
        let repeated = SemanticSketch {
            digests: vec![7, 7, 7, 8],
            minhash: vec![6; 16],
        };
        let summary = ShardBandSummary::build([Some(&repeated)].into_iter(), 4, 4);
        assert_eq!(summary.max_mult, 3);
        let query = SemanticSketch {
            digests: vec![7, 900, 901, 902, 903, 904],
            minhash: vec![4; 16],
        };
        assert!(!summary.can_skip(&query, &query.band_keys(4, 4), 0.7, 0.2));
    }

    #[test]
    fn pre_probe_skip_needs_band_disjointness_and_bounded_containment() {
        // Pure-LSH profile (margin past any containment bound, no
        // window): only band disjointness decides, because non-collided
        // cells always price under the margin.
        let member = SemanticSketch {
            digests: vec![10, 20, 30],
            minhash: vec![3; 16],
        };
        let summary = ShardBandSummary::build([Some(&member)].into_iter(), 4, 4);
        let contained = SemanticSketch {
            digests: vec![10, 20, 30],
            minhash: vec![9; 16],
        };
        // Full digest overlap (c_q = c_t = 1) but disjoint bands: under
        // margin 2.0 every non-collided cell still prices to Prune.
        assert!(summary.can_skip(&contained, &contained.band_keys(4, 4), 2.0, 0.0));
        // At margin 0.7 the containment bound blocks the same skip: a
        // non-collided cell could price Exact.
        assert!(!summary.can_skip(&contained, &contained.band_keys(4, 4), 0.7, 0.0));
        // Band collision blocks the skip whatever the margin.
        assert!(!summary.can_skip(&member, &member.band_keys(4, 4), 2.0, 0.0));
    }
}
