//! Cross-query VCP result cache.
//!
//! [`vcp_pair`](crate::vcp_pair) is the engine's dominant cost: every call
//! enumerates input correspondences and drives the verifier. Its result is
//! a pure function of the two lifted strands and the [`VcpConfig`]
//! thresholds, and both sides are deduplicated by structural hash — so the
//! pair `(query hash, class hash, config fingerprint)` fully determines
//! the answer. This module memoizes that function across `query()` calls
//! (and, via snapshots, across processes).
//!
//! The map is sharded: workers in the work-stealing VCP scheduler hit
//! disjoint shards most of the time, so a single global lock would
//! serialize exactly the part of the pipeline the paper parallelizes
//! (§5.5). Hit/miss counters are atomic and exact.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::vcp::VcpPair;

/// Cache key: `(query structural hash, class structural hash,
/// VcpConfig fingerprint)`.
pub type VcpKey = (u64, u64, u64);

/// One persisted cache entry (the snapshot's on-disk row format).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VcpCacheEntry {
    /// Structural hash of the query strand.
    pub query_hash: u64,
    /// Structural hash of the corpus strand class.
    pub class_hash: u64,
    /// [`crate::VcpConfig::fingerprint`] the result was computed under.
    pub vcp_fingerprint: u64,
    /// The memoized result.
    pub pair: VcpPair,
}

/// Point-in-time counter snapshot for one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the verifier.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0.0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const SHARDS: usize = 16;

/// Sharded concurrent map from [`VcpKey`] to [`VcpPair`].
#[derive(Debug)]
pub struct VcpCache {
    shards: Vec<Mutex<HashMap<VcpKey, VcpPair>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for VcpCache {
    fn default() -> VcpCache {
        VcpCache::new()
    }
}

impl VcpCache {
    /// Creates an empty cache.
    pub fn new() -> VcpCache {
        VcpCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &VcpKey) -> &Mutex<HashMap<VcpKey, VcpPair>> {
        // The components are already hashes; mixing them is enough to
        // spread keys without re-hashing.
        let mix = key.0 ^ key.1.rotate_left(17) ^ key.2.rotate_left(43);
        &self.shards[(mix as usize) % SHARDS]
    }

    /// Looks up a memoized result, counting the outcome.
    pub fn get(&self, key: &VcpKey) -> Option<VcpPair> {
        let found = self.shard(key).lock().expect("cache shard").get(key).copied();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Looks up a memoized result **without** counting the outcome.
    ///
    /// The refine-top-K pass scans every served-window cell to separate
    /// cache-known values from candidates for re-verification; counting
    /// those scans as misses would break the `misses == vcp_pair
    /// invocations` identity the benches report as `verifier_calls`.
    pub fn peek(&self, key: &VcpKey) -> Option<VcpPair> {
        self.shard(key).lock().expect("cache shard").get(key).copied()
    }

    /// Memoizes one result.
    pub fn insert(&self, key: VcpKey, pair: VcpPair) {
        self.shard(&key).lock().expect("cache shard").insert(key, pair);
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard").len())
            .sum()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current counters and size.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    /// Zeroes the hit/miss counters (entries are kept).
    pub fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Exports every entry, sorted by key for deterministic snapshots.
    pub fn entries(&self) -> Vec<VcpCacheEntry> {
        let mut out: Vec<VcpCacheEntry> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            for (&(query_hash, class_hash, vcp_fingerprint), &pair) in
                shard.lock().expect("cache shard").iter()
            {
                out.push(VcpCacheEntry { query_hash, class_hash, vcp_fingerprint, pair });
            }
        }
        out.sort_by_key(|e| (e.query_hash, e.class_hash, e.vcp_fingerprint));
        out
    }

    /// Rebuilds a cache from persisted entries (counters start at zero).
    pub fn from_entries(entries: &[VcpCacheEntry]) -> VcpCache {
        let cache = VcpCache::new();
        for e in entries {
            cache.insert((e.query_hash, e.class_hash, e.vcp_fingerprint), e.pair);
        }
        cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(q: f64, t: f64) -> VcpPair {
        VcpPair { q_in_t: q, t_in_q: t }
    }

    #[test]
    fn get_counts_hits_and_misses() {
        let cache = VcpCache::new();
        assert_eq!(cache.get(&(1, 2, 3)), None);
        cache.insert((1, 2, 3), pair(0.5, 0.25));
        assert_eq!(cache.get(&(1, 2, 3)), Some(pair(0.5, 0.25)));
        assert_eq!(cache.get(&(1, 2, 3)), Some(pair(0.5, 0.25)));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 1));
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn entries_round_trip_and_sort() {
        let cache = VcpCache::new();
        cache.insert((9, 1, 7), pair(1.0, 0.0));
        cache.insert((2, 5, 7), pair(0.0, 1.0));
        let entries = cache.entries();
        assert_eq!(entries.len(), 2);
        assert!(entries[0].query_hash < entries[1].query_hash);
        let rebuilt = VcpCache::from_entries(&entries);
        assert_eq!(rebuilt.get(&(9, 1, 7)), Some(pair(1.0, 0.0)));
        assert_eq!(rebuilt.get(&(2, 5, 7)), Some(pair(0.0, 1.0)));
        assert_eq!(rebuilt.stats().entries, 2);
    }

    #[test]
    fn reset_keeps_entries() {
        let cache = VcpCache::new();
        cache.insert((1, 1, 1), pair(0.5, 0.5));
        let _ = cache.get(&(1, 1, 1));
        cache.reset_counters();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = VcpCache::new();
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..256u64 {
                        cache.insert((w, i, 0), pair(w as f64, i as f64));
                        assert!(cache.get(&(w, i, 0)).is_some());
                    }
                });
            }
        });
        assert_eq!(cache.len(), 4 * 256);
        assert_eq!(cache.stats().hits, 4 * 256);
    }
}
