//! The statistical similarity model (paper §3.3–§3.4).
//!
//! `Pr(s_q|s_t) = σ(k·(VCP − 0.5))` with `k = 10`; `Pr(s_q|t)` maximizes
//! over the target's strands; `Pr(s_q|H0)` is the corpus mean; the local
//! evidence score is the log likelihood-ratio and the global evidence
//! score is its sum over the query's strands (Equations 1–5).

use serde::{Deserialize, Serialize};

/// The sigmoid steepness the paper found to work well (§3.3.1).
pub const SIGMOID_K: f64 = 10.0;

/// The sigmoid midpoint (VCP is in `[0, 1]`).
pub const SIGMOID_MIDPOINT: f64 = 0.5;

/// `Pr(s_q|s_t)` from a VCP value (Equation 3).
pub fn likelihood(vcp: f64) -> f64 {
    1.0 / (1.0 + (-SIGMOID_K * (vcp - SIGMOID_MIDPOINT)).exp())
}

/// Which scoring layer to use — the ablation axis of the paper's §6.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScoringMode {
    /// Raw VCP aggregation, no statistics: `Σ_t max_q VCP`.
    SVcp,
    /// Statistical significance without the sigmoid: `Pr := VCP`.
    SLog,
    /// The full method (sigmoid + statistics).
    Esh,
}

impl ScoringMode {
    /// All modes, in the paper's bottom-up order.
    pub const ALL: [ScoringMode; 3] = [ScoringMode::SVcp, ScoringMode::SLog, ScoringMode::Esh];

    /// The label used in Table 1.
    pub fn label(self) -> &'static str {
        match self {
            ScoringMode::SVcp => "S-VCP",
            ScoringMode::SLog => "S-LOG",
            ScoringMode::Esh => "Esh",
        }
    }
}

/// Accumulates `Pr(s_q|H0)` (the corpus mean) per query strand.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct H0Accumulator {
    /// Σ over all corpus strands of `σ(VCP)`.
    pub sum_pr: f64,
    /// Σ over all corpus strands of raw VCP.
    pub sum_vcp: f64,
    /// Number of corpus strands considered.
    pub count: u64,
}

impl H0Accumulator {
    /// Adds one corpus strand's VCP (weighted by `multiplicity` identical
    /// occurrences).
    pub fn add(&mut self, vcp: f64, multiplicity: u64) {
        self.sum_pr += likelihood(vcp) * multiplicity as f64;
        self.sum_vcp += vcp * multiplicity as f64;
        self.count += multiplicity;
    }

    /// Merges another accumulator.
    pub fn merge(&mut self, other: &H0Accumulator) {
        self.sum_pr += other.sum_pr;
        self.sum_vcp += other.sum_vcp;
        self.count += other.count;
    }

    /// `Pr(s_q|H0)` under the sigmoid model.
    pub fn mean_pr(&self) -> f64 {
        if self.count == 0 {
            return likelihood(0.0);
        }
        (self.sum_pr / self.count as f64).max(1e-12)
    }

    /// `Pr(s_q|H0)` under the identity model.
    pub fn mean_vcp(&self) -> f64 {
        if self.count == 0 {
            return 1e-12;
        }
        (self.sum_vcp / self.count as f64).max(1e-12)
    }
}

/// Local evidence score (Equation 5): `log Pr(s_q|t) − log Pr(s_q|H0)`.
pub fn les(pr_in_target: f64, pr_h0: f64) -> f64 {
    pr_in_target.max(1e-12).ln() - pr_h0.max(1e-12).ln()
}

/// Global evidence score (Equation 1): Σ of per-strand LES values.
pub fn ges(strand_les: impl IntoIterator<Item = f64>) -> f64 {
    strand_les.into_iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_endpoints() {
        assert!(likelihood(1.0) > 0.99);
        assert!(likelihood(0.0) < 0.01);
        let mid = likelihood(0.5);
        assert!((mid - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sigmoid_is_monotone() {
        let mut prev = 0.0;
        for i in 0..=10 {
            let v = likelihood(i as f64 / 10.0);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn les_positive_iff_better_than_chance() {
        let h0 = 0.1;
        assert!(les(0.9, h0) > 0.0);
        assert!(les(0.05, h0) < 0.0);
        assert_eq!(les(h0, h0), 0.0);
    }

    #[test]
    fn h0_mean_counts_multiplicity() {
        let mut acc = H0Accumulator::default();
        acc.add(1.0, 3);
        acc.add(0.0, 1);
        let expect = (3.0 * likelihood(1.0) + likelihood(0.0)) / 4.0;
        assert!((acc.mean_pr() - expect).abs() < 1e-12);
        assert!((acc.mean_vcp() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn common_strands_get_low_les() {
        // A strand matched perfectly everywhere (compiler boilerplate) has
        // Pr(s|t) == Pr(s|H0) and thus LES == 0: no evidence.
        let mut acc = H0Accumulator::default();
        acc.add(1.0, 100);
        assert!(les(likelihood(1.0), acc.mean_pr()).abs() < 1e-9);
        // A unique strand matched only here is strong evidence.
        let mut rare = H0Accumulator::default();
        rare.add(1.0, 1);
        rare.add(0.0, 99);
        assert!(les(likelihood(1.0), rare.mean_pr()) > 2.0);
    }

    #[test]
    fn ges_sums() {
        assert_eq!(ges([1.0, 2.0, -0.5]), 2.5);
        assert_eq!(ges([]), 0.0);
    }

    #[test]
    fn h0_merge() {
        let mut a = H0Accumulator::default();
        a.add(0.5, 2);
        let mut b = H0Accumulator::default();
        b.add(1.0, 2);
        a.merge(&b);
        assert_eq!(a.count, 4);
        assert!((a.mean_vcp() - 0.75).abs() < 1e-12);
    }
}
