#![warn(missing_docs)]

//! # esh-core — statistical similarity of binary procedures
//!
//! The paper's primary contribution: strand-level semantic comparison
//! (VCP, Definition 3 / Algorithm 2) lifted into whole-procedure
//! similarity through a statistical model (sigmoid likelihood, local and
//! global evidence scores — Equations 1–5), with the §5.5 engineering that
//! makes verifier-based comparison tractable (input-only correspondence
//! enumeration, single-query resolution of non-input matches, strand
//! deduplication, size filters, parallelism).
//!
//! The three scoring modes mirror the paper's ablation (§6.2):
//! [`ScoringMode::SVcp`] (no statistics), [`ScoringMode::SLog`]
//! (statistics, no sigmoid) and [`ScoringMode::Esh`] (the full method).
//!
//! The engine is a persistent service component: a built corpus can be
//! saved to a versioned [`snapshot`] and reloaded by later processes, and
//! verifier results are memoized across queries in a sharded
//! [`VcpCache`]. See `docs/ARCHITECTURE.md` for the full data-flow and
//! the on-disk format specification.
//!
//! # Examples
//!
//! Build a corpus, persist it, reload it, and query — the reloaded engine
//! produces scores identical to the in-memory one:
//!
//! ```
//! use esh_cc::{Compiler, Vendor, VendorVersion};
//! use esh_core::{EngineConfig, SimilarityEngine};
//! use esh_minic::demo;
//!
//! let f = demo::saturating_sum();
//! let gcc = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9)).compile_function(&f);
//! let clang = Compiler::new(Vendor::Clang, VendorVersion::new(3, 5)).compile_function(&f);
//!
//! let mut engine = SimilarityEngine::new(EngineConfig::default());
//! engine.add_target("clang-build", &clang);
//!
//! let path = std::env::temp_dir().join("esh-core-doc-example.esh");
//! engine.save(&path).unwrap();
//! let reloaded = SimilarityEngine::load(&path).unwrap();
//! std::fs::remove_file(&path).ok();
//!
//! let a = engine.query(&gcc);
//! let b = reloaded.query(&gcc);
//! assert_eq!(a.scores[0].ges, b.scores[0].ges);
//! ```
//!
//! Compare one strand pair directly with [`vcp_pair`]:
//!
//! ```
//! use esh_core::{vcp_pair, VcpConfig};
//! use esh_ivl::lift;
//! use esh_verifier::VerifierSession;
//!
//! let p = esh_asm::parse_proc("proc p\nentry:\nmov r12, rbx\nlea rdi, [r12+0x3]").unwrap();
//! let q = esh_asm::parse_proc("proc q\nentry:\nmov r13, rbx\nlea rcx, [r13+0x3]").unwrap();
//! let sp = lift("p", &p.blocks[0].insts);
//! let sq = lift("q", &q.blocks[0].insts);
//! let config = VcpConfig { min_strand_vars: 1, ..VcpConfig::default() };
//! let mut session = VerifierSession::new();
//! let v = vcp_pair(&mut session, &sp, &sq, &config);
//! assert_eq!(v.q_in_t, 1.0); // same computation, different registers
//! ```

mod cache;
mod engine;
pub mod prefilter;
mod shard;
pub mod snapshot;
mod stats;
mod vcp;

pub use cache::{CacheStats, VcpCache, VcpCacheEntry, VcpKey};
pub use engine::{
    BatchQuery, CancelToken, EngineConfig, Granularity, QueryCancelled, QueryError, QueryScores,
    SimilarityEngine, TargetId, TargetScore,
};
pub use prefilter::{
    bounds_decision, calibrated_margin, compute_probe_sketch, compute_sketch, MarginCalibration,
    MarginSample, PrefilterConfig, PrefilterStats, PrefilterStatsSnapshot, SemanticSketch,
    SketchDecision, SketchIndex,
};
pub use esh_solver::SolverPerf;
pub use shard::{
    Bloom, ClassExport, CorpusExport, LazyClassMeta, ShardBandSummary, ShardError, ShardRecords,
    ShardSource, ShardSpec, ShardStats, TargetExport,
};
pub use snapshot::{ConfigMismatchKind, SnapshotError, SNAPSHOT_FORMAT_VERSION};
pub use stats::{ges, les, likelihood, H0Accumulator, ScoringMode, SIGMOID_K, SIGMOID_MIDPOINT};
pub use vcp::{size_ratio_ok, vcp_pair, VcpConfig, VcpPair};
