#![warn(missing_docs)]

//! # esh-core — statistical similarity of binary procedures
//!
//! The paper's primary contribution: strand-level semantic comparison
//! (VCP, Definition 3 / Algorithm 2) lifted into whole-procedure
//! similarity through a statistical model (sigmoid likelihood, local and
//! global evidence scores — Equations 1–5), with the §5.5 engineering that
//! makes verifier-based comparison tractable (input-only correspondence
//! enumeration, single-query resolution of non-input matches, strand
//! deduplication, size filters, parallelism).
//!
//! The three scoring modes mirror the paper's ablation (§6.2):
//! [`ScoringMode::SVcp`] (no statistics), [`ScoringMode::SLog`]
//! (statistics, no sigmoid) and [`ScoringMode::Esh`] (the full method).

mod engine;
mod stats;
mod vcp;

pub use engine::{EngineConfig, Granularity, QueryScores, SimilarityEngine, TargetId, TargetScore};
pub use stats::{ges, les, likelihood, H0Accumulator, ScoringMode, SIGMOID_K, SIGMOID_MIDPOINT};
pub use vcp::{size_ratio_ok, vcp_pair, VcpConfig, VcpPair};
