//! The similarity engine: query a procedure against a target corpus.
//!
//! Pipeline per §3.1: decompose into strands → lift to IVL → (dedup by
//! structural hash, prefilter by semantic signature) → VCP via the
//! verifier → sigmoid likelihood → LES against the corpus-wide H0 →
//! GES per target. Pairwise comparison is embarrassingly parallel (§5.5);
//! the engine distributes (query strand × class range) tiles over a
//! work-stealing queue and memoizes verifier results in a cross-query
//! [`VcpCache`]. Corpus state persists via [`crate::snapshot`].

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use esh_asm::Procedure;
use esh_ivl::Proc;
use esh_solver::{EquivConfig, SolverPerf};
use esh_strands::{
    extract_proc_strands, lift_strand, semantic_signature, stable_hash64, structural_hash,
    Signature,
};
use esh_verifier::VerifierSession;
use serde::{Deserialize, Serialize};

use crate::cache::{CacheStats, VcpCache, VcpCacheEntry};
use crate::prefilter::{
    bounds_decision, calibrated_margin, compute_probe_sketch, compute_sketch, MarginCalibration,
    MarginSample, PrefilterConfig, PrefilterStats, PrefilterStatsSnapshot, SemanticSketch,
    SketchDecision, SketchIndex,
};
use crate::shard::{
    ClassExport, CorpusExport, LazyClassMeta, LazyShards, ShardBandSummary, ShardError,
    ShardProcRef, ShardSource, ShardSpec, ShardStats, ShardTouch, TargetExport,
};
use crate::stats::{ges, les, likelihood, H0Accumulator, ScoringMode};
use crate::vcp::{size_ratio_ok, vcp_pair, VcpConfig, VcpPair};

/// Decomposition granularity — the §3.2 design axis. Strands (block-level
/// backward slices) are the paper's choice; whole basic blocks are the
/// coarser alternative its "extended graphlets" discussion contrasts with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Granularity {
    /// Algorithm 1 strands (the paper's unit).
    Strands,
    /// One unit per basic block.
    WholeBlocks,
}

/// Engine configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Decomposition granularity (§3.2).
    pub granularity: Granularity,
    /// VCP search tuning (§5.5 thresholds).
    pub vcp: VcpConfig,
    /// Verifier budgets.
    pub equiv: EquivConfig,
    /// Enable the semantic-signature prefilter (exactness-preserving upper
    /// bound; see `esh-strands`).
    pub prefilter: bool,
    /// Pairs whose signature overlap bound is below this skip verification
    /// (0.5 matches the paper's minimum-VCP filter).
    pub prefilter_threshold: f64,
    /// The semantic-sketch prefilter tier (concrete-execution fingerprints
    /// and banded LSH; see [`crate::prefilter`]). `None` reproduces the
    /// pre-sketch engine exactly — snapshots written before format v3
    /// load as `None`, preserving their recorded fingerprint.
    pub sketch: Option<PrefilterConfig>,
    /// Worker threads (0 = use available parallelism).
    pub threads: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            granularity: Granularity::Strands,
            vcp: VcpConfig::default(),
            equiv: EquivConfig::default(),
            prefilter: true,
            prefilter_threshold: 0.5,
            sketch: Some(PrefilterConfig::default()),
            threads: 0,
        }
    }
}

impl EngineConfig {
    /// Stable digest of every scoring-relevant knob. Two engines with the
    /// same fingerprint produce identical scores for identical corpora, so
    /// snapshots and caches key on it. `threads` only changes scheduling,
    /// never results, and is deliberately excluded.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |field: u64| {
            for b in field.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        mix(match self.granularity {
            Granularity::Strands => 1,
            Granularity::WholeBlocks => 2,
        });
        mix(self.vcp.fingerprint());
        mix(self.equiv.fingerprint());
        mix(u64::from(self.prefilter));
        mix(self.prefilter_threshold.to_bits());
        // Mixed only when present so configs without a sketch tier keep
        // the fingerprint they had before format v3 — a v2 snapshot's
        // recorded fingerprint must still verify after an upgrade.
        if let Some(sketch) = &self.sketch {
            mix(sketch.fingerprint());
        }
        h
    }

    /// The sketch-prefilter parameters when the tier is configured *and*
    /// switched on.
    pub fn active_sketch(&self) -> Option<&PrefilterConfig> {
        self.sketch.as_ref().filter(|s| s.enabled)
    }
}

/// Identifies a target in the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TargetId(pub usize);

/// One deduplicated strand shape.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct StrandClass {
    pub(crate) proc_: Proc,
    pub(crate) signature: Signature,
    pub(crate) vars: usize,
    /// Structural hash — the dedup key, kept so snapshots can rebuild the
    /// hash index and the VCP cache can key on it without re-hashing.
    pub(crate) hash: u64,
    /// Total occurrences across the whole corpus (drives H0).
    pub(crate) corpus_count: u64,
    /// Semantic sketch under the configured [`PrefilterConfig`]. `None`
    /// when the tier is off or the class came from a pre-v3 snapshot;
    /// missing sketches are rebuilt lazily on the first sketch-enabled
    /// query.
    pub(crate) sketch: Option<SemanticSketch>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct TargetRecord {
    pub(crate) name: String,
    /// `(class index, occurrences in this target)`.
    pub(crate) strands: Vec<(usize, u64)>,
    pub(crate) basic_blocks: usize,
}

/// A prepared query strand.
#[derive(Debug)]
struct QueryStrand {
    proc_: Proc,
    signature: Signature,
    sketch: Option<SemanticSketch>,
    vars: usize,
    hash: u64,
    count: u64,
}

/// Per-strand artifacts memoized across one batch of queries (keyed by
/// structural hash): both are pure functions of the lifted strand.
#[derive(Debug, Clone)]
struct PreparedStrand {
    signature: Signature,
    sketch: Option<SemanticSketch>,
}

/// One query in a [`SimilarityEngine::query_batch`] call: the procedure
/// to score plus its own cancellation token. Tokens are per-item so one
/// expired deadline abandons only its own query — the rest of the batch
/// keeps running.
#[derive(Debug)]
pub struct BatchQuery<'a> {
    /// The procedure to score against the corpus.
    pub proc_: &'a Procedure,
    /// Cancellation/deadline handle for this item alone.
    pub cancel: CancelToken,
}

/// The score of one target for one query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TargetScore {
    /// Target identity.
    pub target: TargetId,
    /// Target name (ground-truth bookkeeping only).
    pub name: String,
    /// Full-method GES (Equation 1).
    pub ges: f64,
    /// S-LOG ablation score (statistics without the sigmoid).
    pub s_log: f64,
    /// S-VCP ablation score (no statistics).
    pub s_vcp: f64,
}

impl TargetScore {
    /// The score under `mode`.
    pub fn score(&self, mode: ScoringMode) -> f64 {
        match mode {
            ScoringMode::Esh => self.ges,
            ScoringMode::SLog => self.s_log,
            ScoringMode::SVcp => self.s_vcp,
        }
    }
}

/// All per-target scores for one query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryScores {
    /// One entry per target, in insertion order.
    pub scores: Vec<TargetScore>,
    /// Number of *deduplicated* query strand classes that participated
    /// (after §5.5 filtering). Each class is counted once regardless of
    /// how many times it occurs in the query procedure.
    pub query_strands: usize,
    /// Total query strand occurrences behind those classes — the weight
    /// mass the GES sum runs over.
    pub query_strand_occurrences: usize,
}

impl QueryScores {
    /// Targets sorted by descending GES.
    pub fn ranked(&self) -> Vec<&TargetScore> {
        self.ranked_by(ScoringMode::Esh)
    }

    /// Targets sorted by descending score under `mode`. Exact score ties
    /// break by ascending [`TargetId`]: `sort_by` is stable but upstream
    /// callers (serving layer, benches) compare rankings across engines
    /// whose score vectors were built independently, so the order must be
    /// a pure function of the scores themselves.
    pub fn ranked_by(&self, mode: ScoringMode) -> Vec<&TargetScore> {
        let mut v: Vec<&TargetScore> = self.scores.iter().collect();
        v.sort_by(|a, b| {
            b.score(mode)
                .partial_cmp(&a.score(mode))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.target.cmp(&b.target))
        });
        v
    }

    /// Min-max normalized GES per target (the scale of Figure 5).
    pub fn normalized(&self) -> Vec<(TargetId, f64)> {
        let min = self
            .scores
            .iter()
            .map(|s| s.ges)
            .fold(f64::INFINITY, f64::min);
        let max = self
            .scores
            .iter()
            .map(|s| s.ges)
            .fold(f64::NEG_INFINITY, f64::max);
        let span = (max - min).max(1e-12);
        self.scores
            .iter()
            .map(|s| (s.target, (s.ges - min) / span))
            .collect()
    }
}

/// Cooperative cancellation handle for [`SimilarityEngine::query_cancellable`].
///
/// A token combines an explicit flag (set by [`CancelToken::cancel`], e.g.
/// on server shutdown) with an optional wall-clock deadline. The engine's
/// VCP workers poll it between tiles, so a cancelled query stops issuing
/// verifier work within one tile's latency instead of running to
/// completion. Clones share the same flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never fires on its own (cancel it explicitly).
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that fires once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// Requests cancellation; every clone observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// True once cancelled explicitly or past the deadline. A deadline
    /// trip latches the shared flag so later polls skip the clock read.
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Relaxed) {
            return true;
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => {
                self.flag.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }
}

/// Error returned when a query is abandoned via its [`CancelToken`]
/// (deadline passed or cancelled explicitly) before scoring finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryCancelled;

impl fmt::Display for QueryCancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("query cancelled before completion")
    }
}

impl std::error::Error for QueryCancelled {}

/// Why a query failed: abandoned via its [`CancelToken`], or a
/// lazily-backed shard it needed could not be loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query's cancel token fired (deadline passed or cancelled
    /// explicitly) before scoring finished.
    Cancelled,
    /// A backing shard is corrupted or unreadable; the error names the
    /// shard (and, for file-backed indexes, its path). Other shards keep
    /// serving — only queries touching this shard fail.
    Corrupted(ShardError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Cancelled => QueryCancelled.fmt(f),
            QueryError::Corrupted(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<QueryCancelled> for QueryError {
    fn from(_: QueryCancelled) -> QueryError {
        QueryError::Cancelled
    }
}

impl From<ShardError> for QueryError {
    fn from(e: ShardError) -> QueryError {
        QueryError::Corrupted(e)
    }
}

/// A borrowed-or-pinned reference to a class procedure: resident classes
/// borrow straight from the engine, shard-backed classes pin their
/// shard's payload (keeping it alive across evictions). Dereferences to
/// [`Proc`].
enum ClassProcRef<'a> {
    Resident(&'a Proc),
    Shared(ShardProcRef),
}

impl std::ops::Deref for ClassProcRef<'_> {
    type Target = Proc;

    fn deref(&self) -> &Proc {
        match self {
            ClassProcRef::Resident(p) => p,
            ClassProcRef::Shared(r) => r,
        }
    }
}

/// The similarity engine. Add targets once, query many times.
///
/// The corpus can be persisted with [`SimilarityEngine::save`] /
/// [`SimilarityEngine::save_with_cache`] and restored with
/// [`SimilarityEngine::load`]; repeated queries reuse verifier results
/// through the cross-query [`VcpCache`] (see
/// [`SimilarityEngine::cache_stats`]).
///
/// ```
/// use esh_cc::{Compiler, Vendor, VendorVersion};
/// use esh_core::{EngineConfig, SimilarityEngine};
/// use esh_minic::demo;
///
/// let f = demo::saturating_sum();
/// let gcc = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9)).compile_function(&f);
/// let clang = Compiler::new(Vendor::Clang, VendorVersion::new(3, 5)).compile_function(&f);
/// let mut engine = SimilarityEngine::new(EngineConfig::default());
/// let t = engine.add_target("clang-build", &clang);
/// let scores = engine.query(&gcc);
/// assert_eq!(scores.ranked()[0].target, t);
/// ```
#[derive(Debug)]
pub struct SimilarityEngine {
    config: EngineConfig,
    classes: Vec<StrandClass>,
    class_by_hash: HashMap<u64, usize>,
    targets: Vec<TargetRecord>,
    cache: VcpCache,
    /// Idle verifier sessions, checked out one per worker thread so term
    /// pools, verdict caches, and the incremental solver survive across
    /// queries — not just across one query's tiles.
    sessions: Mutex<Vec<VerifierSession>>,
    solver: SolverCounters,
    prefilter_stats: PrefilterStats,
    /// Banded LSH index over the corpus classes' sketches, built lazily on
    /// the first sketch-enabled query (so pre-v3 snapshots without
    /// persisted sketches just rebuild them) and dropped whenever the
    /// corpus changes.
    sketch_index: Mutex<Option<Arc<SketchIndex>>>,
    /// Lazy backing store when the engine was opened from a sharded (v5)
    /// index: class procedures and per-segment cache entries load on
    /// first use. `None` for fully resident engines.
    shards: Option<LazyShards>,
}

/// Engine-lifetime SAT counters aggregated across worker sessions.
/// Mirrors [`SolverPerf`] with atomic fields; pure counters add, the
/// retained-learnts gauge takes the max over sessions.
#[derive(Debug, Default)]
struct SolverCounters {
    sat_queries: AtomicU64,
    blast_cache_hits: AtomicU64,
    blast_cache_misses: AtomicU64,
    conflicts: AtomicU64,
    sat_time_ns: AtomicU64,
    retained_learnts: AtomicU64,
    learnts_dropped: AtomicU64,
    solver_resets: AtomicU64,
}

impl SolverCounters {
    fn add(&self, d: &SolverPerf) {
        self.sat_queries.fetch_add(d.sat_queries, Ordering::Relaxed);
        self.blast_cache_hits
            .fetch_add(d.blast_cache_hits, Ordering::Relaxed);
        self.blast_cache_misses
            .fetch_add(d.blast_cache_misses, Ordering::Relaxed);
        self.conflicts.fetch_add(d.conflicts, Ordering::Relaxed);
        self.sat_time_ns.fetch_add(d.sat_time_ns, Ordering::Relaxed);
        self.retained_learnts
            .fetch_max(d.retained_learnts, Ordering::Relaxed);
        self.learnts_dropped
            .fetch_add(d.learnts_dropped, Ordering::Relaxed);
        self.solver_resets
            .fetch_add(d.solver_resets, Ordering::Relaxed);
    }

    fn snapshot(&self) -> SolverPerf {
        SolverPerf {
            sat_queries: self.sat_queries.load(Ordering::Relaxed),
            blast_cache_hits: self.blast_cache_hits.load(Ordering::Relaxed),
            blast_cache_misses: self.blast_cache_misses.load(Ordering::Relaxed),
            conflicts: self.conflicts.load(Ordering::Relaxed),
            sat_time_ns: self.sat_time_ns.load(Ordering::Relaxed),
            retained_learnts: self.retained_learnts.load(Ordering::Relaxed),
            learnts_dropped: self.learnts_dropped.load(Ordering::Relaxed),
            solver_resets: self.solver_resets.load(Ordering::Relaxed),
        }
    }
}

impl SimilarityEngine {
    /// Creates an engine.
    pub fn new(config: EngineConfig) -> SimilarityEngine {
        SimilarityEngine {
            config,
            classes: Vec::new(),
            class_by_hash: HashMap::new(),
            targets: Vec::new(),
            cache: VcpCache::new(),
            sessions: Mutex::new(Vec::new()),
            solver: SolverCounters::default(),
            prefilter_stats: PrefilterStats::default(),
            sketch_index: Mutex::new(None),
            shards: None,
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Hit/miss/size counters of the cross-query VCP cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Zeroes the cache hit/miss counters (memoized entries are kept).
    pub fn reset_cache_counters(&self) {
        self.cache.reset_counters()
    }

    /// Aggregate SAT-solver counters across all worker sessions this
    /// engine has run (CNF-cache hits, conflicts, wall time, clause
    /// retention — see [`SolverPerf`]).
    pub fn solver_stats(&self) -> SolverPerf {
        self.solver.snapshot()
    }

    /// Engine-lifetime counters of the semantic-sketch prefilter tier
    /// (pairs priced without the solver, LSH band collisions, margin
    /// fallbacks).
    pub fn prefilter_stats(&self) -> PrefilterStatsSnapshot {
        self.prefilter_stats.snapshot()
    }

    /// Switches the sketch prefilter tier on or off for subsequent
    /// queries (the `esh query --no-prefilter` escape hatch). Enabling it
    /// on an engine configured without the tier installs the default
    /// [`PrefilterConfig`]; note both directions change the config
    /// fingerprint, since pruned pairs carry estimated VCP values.
    pub fn set_prefilter_enabled(&mut self, enabled: bool) {
        match &mut self.config.sketch {
            Some(sketch) => sketch.enabled = enabled,
            None if enabled => self.config.sketch = Some(PrefilterConfig::default()),
            None => {}
        }
        *self.sketch_index.get_mut().expect("sketch index poisoned") = None;
    }

    pub(crate) fn cache(&self) -> &VcpCache {
        &self.cache
    }

    /// Every memoized VCP-cache entry, sorted by key — what
    /// `save_with_cache` persists and the sharded-index writer segments.
    pub fn cache_entries(&self) -> Vec<VcpCacheEntry> {
        self.cache.entries()
    }

    /// Classes as they should be serialized. On a lazily-backed engine
    /// this **materializes** every shard first: a placeholder procedure
    /// must never reach disk.
    pub(crate) fn classes_for_snapshot(&self) -> Vec<StrandClass> {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let mut c = c.clone();
                if self.shards.is_some() {
                    c.proc_ = self.class_proc(i).clone();
                }
                c
            })
            .collect()
    }

    pub(crate) fn targets_for_snapshot(&self) -> &[TargetRecord] {
        &self.targets
    }

    /// The lifted procedure of class `ci`, pulling its shard into memory
    /// (again, if evicted) on demand when the engine is lazily backed.
    ///
    /// Panics when the backing shard is corrupted — cold paths (snapshot
    /// export, sketch builds, calibration) have no error channel. The
    /// query hot path runs the fallible [`Self::ensure_class_shard`]
    /// before any cell touches the shard, so corruption surfaces there as
    /// a typed [`QueryError`] first.
    fn class_proc(&self, ci: usize) -> ClassProcRef<'_> {
        match &self.shards {
            Some(lazy) if ci < lazy.class_limit() => ClassProcRef::Shared(
                lazy.proc_ref(ci, &self.cache)
                    .unwrap_or_else(|e| panic!("{e}")),
            ),
            _ => ClassProcRef::Resident(&self.classes[ci].proc_),
        }
    }

    /// Fallible twin of [`Self::class_proc`] for the query hot path:
    /// under per-record demand decoding a corrupt record is only
    /// discovered when its class is first decoded — which happens *here*,
    /// at proc-need time, not at shard open — so the sites that feed the
    /// verifier must surface the checksum error as a typed
    /// [`QueryError::Corrupted`] instead of panicking.
    fn class_proc_checked(&self, ci: usize) -> Result<ClassProcRef<'_>, ShardError> {
        match &self.shards {
            Some(lazy) if ci < lazy.class_limit() => {
                Ok(ClassProcRef::Shared(lazy.proc_ref(ci, &self.cache)?))
            }
            _ => Ok(ClassProcRef::Resident(&self.classes[ci].proc_)),
        }
    }

    /// Opens class `ci`'s shard (bringing its persisted cache segment
    /// with it) and returns the shard index, or `None` when the class is
    /// resident. Must run before the first counted cache lookup touching
    /// `ci` — the open-before-lookup invariant that keeps sharded
    /// hit/miss counters identical to a fully resident engine's. (The
    /// invariant survives eviction: a reopen re-inserts the same segment
    /// idempotently before the next counted lookup.) Procedure records
    /// are *not* decoded here: that happens per class at proc-need time
    /// via [`Self::class_proc_checked`], after the counted lookup — the
    /// decode-before-lookup rule degenerates to decode-*on-miss*, which
    /// is safe because a decode never touches a counter.
    fn ensure_class_shard(&self, ci: usize) -> Result<Option<usize>, ShardError> {
        match &self.shards {
            Some(lazy) if ci < lazy.class_limit() => {
                let shard = lazy.shard_of_class(ci);
                lazy.ensure_loaded(shard, &self.cache)?;
                Ok(Some(shard))
            }
            _ => Ok(None),
        }
    }

    /// Sets the resident-bytes budget for lazily-loaded shards (0 =
    /// unbounded): least-recently-used shards are evicted — and reloaded
    /// on the next touch — to keep resident payload bytes at or under
    /// the budget. No effect on fully resident engines.
    pub fn set_shard_budget(&self, bytes: u64) {
        if let Some(lazy) = &self.shards {
            lazy.set_budget(bytes);
        }
    }

    /// Switches between per-record demand decoding (the default: a
    /// touched shard decodes only the classes a query actually needs)
    /// and whole-shard decoding (every record decodes at shard open —
    /// the pre-demand-decode behavior, kept as a baseline and escape
    /// hatch). No effect on fully resident engines.
    pub fn set_shard_demand_decode(&mut self, demand: bool) {
        if let Some(lazy) = &mut self.shards {
            lazy.eager = !demand;
        }
    }

    /// Installs per-shard band summaries enabling whole-shard pruning at
    /// query time (see [`ShardBandSummary`]). `summaries` must have one
    /// entry per shard.
    ///
    /// # Errors
    ///
    /// Fails when the engine is not shard-backed or the length does not
    /// match the shard count.
    pub fn set_shard_band_summaries(
        &mut self,
        summaries: Vec<ShardBandSummary>,
    ) -> Result<(), String> {
        match &mut self.shards {
            Some(lazy) => {
                if summaries.len() != lazy.shard_count() {
                    return Err(format!(
                        "{} band summaries for {} shards",
                        summaries.len(),
                        lazy.shard_count()
                    ));
                }
                lazy.summaries = Some(summaries);
                Ok(())
            }
            None => Err("engine is not backed by a sharded index".into()),
        }
    }

    /// Shard counters: total/loaded shard counts and query fan-out. All
    /// zero for fully resident engines.
    pub fn shard_stats(&self) -> ShardStats {
        self.shards.as_ref().map_or_else(ShardStats::default, |l| l.stats())
    }

    /// Dumps the whole corpus — config, materialized classes, targets,
    /// sorted cache entries — for the sharded-index writer. On a lazily
    /// backed engine this loads every shard.
    pub fn export_corpus(&self) -> CorpusExport {
        CorpusExport {
            config: self.config.clone(),
            classes: self
                .classes
                .iter()
                .enumerate()
                .map(|(i, c)| ClassExport {
                    name: c.proc_.name.clone(),
                    proc_: self.class_proc(i).clone(),
                    signature: c.signature.clone(),
                    vars: c.vars,
                    hash: c.hash,
                    corpus_count: c.corpus_count,
                    sketch: c.sketch.clone(),
                })
                .collect(),
            targets: self
                .targets
                .iter()
                .map(|t| TargetExport {
                    name: t.name.clone(),
                    strands: t.strands.clone(),
                    basic_blocks: t.basic_blocks,
                })
                .collect(),
            cache: self.cache.entries(),
        }
    }

    /// Builds an engine over a lazily-loaded sharded backing store: class
    /// pricing metadata and targets are resident, procedures and
    /// per-segment cache entries come from `source` on demand.
    /// `eager_cache` holds entries that belong to no shard (defensive;
    /// normally empty) — they are resident from the start.
    ///
    /// Validates that `specs` tile both index spaces contiguously from
    /// zero, that class hashes are unique, and that target strand
    /// references are in range.
    pub fn from_lazy_parts(
        config: EngineConfig,
        classes: Vec<LazyClassMeta>,
        targets: Vec<TargetExport>,
        specs: Vec<ShardSpec>,
        source: Box<dyn ShardSource>,
        eager_cache: Vec<VcpCacheEntry>,
    ) -> Result<SimilarityEngine, String> {
        let mut class_cursor = 0usize;
        let mut target_cursor = 0usize;
        for (i, s) in specs.iter().enumerate() {
            if s.class_start != class_cursor || s.target_start != target_cursor {
                return Err(format!("shard {i} does not tile contiguously"));
            }
            if s.class_end < s.class_start || s.target_end < s.target_start {
                return Err(format!("shard {i} has an inverted range"));
            }
            class_cursor = s.class_end;
            target_cursor = s.target_end;
        }
        if class_cursor != classes.len() || target_cursor != targets.len() {
            return Err(format!(
                "shards cover {class_cursor} classes / {target_cursor} targets, \
                 index has {} / {}",
                classes.len(),
                targets.len()
            ));
        }
        let mut class_by_hash = HashMap::with_capacity(classes.len());
        for (i, c) in classes.iter().enumerate() {
            if class_by_hash.insert(c.hash, i).is_some() {
                return Err("duplicate strand-class hashes".into());
            }
        }
        for t in &targets {
            if t.strands.iter().any(|&(ci, _)| ci >= classes.len()) {
                return Err(format!("target `{}` references a class out of range", t.name));
            }
        }
        let classes = classes
            .into_iter()
            .map(|c| StrandClass {
                // Placeholder body; every code path that needs the real
                // procedure goes through `class_proc`. The name is kept so
                // diagnostics (`common_classes`) stay useful without a
                // shard load.
                proc_: Proc::new(c.name),
                signature: c.signature,
                vars: c.vars,
                hash: c.hash,
                corpus_count: c.corpus_count,
                sketch: c.sketch,
            })
            .collect();
        let targets = targets
            .into_iter()
            .map(|t| TargetRecord {
                name: t.name,
                strands: t.strands,
                basic_blocks: t.basic_blocks,
            })
            .collect();
        Ok(SimilarityEngine {
            config,
            classes,
            class_by_hash,
            targets,
            cache: VcpCache::from_entries(&eager_cache),
            sessions: Mutex::new(Vec::new()),
            solver: SolverCounters::default(),
            prefilter_stats: PrefilterStats::default(),
            sketch_index: Mutex::new(None),
            shards: Some(LazyShards::new(specs, source)),
        })
    }

    pub(crate) fn from_snapshot_parts(
        config: EngineConfig,
        classes: Vec<StrandClass>,
        class_by_hash: HashMap<u64, usize>,
        targets: Vec<TargetRecord>,
        cache: VcpCache,
    ) -> SimilarityEngine {
        SimilarityEngine {
            config,
            classes,
            class_by_hash,
            targets,
            cache,
            sessions: Mutex::new(Vec::new()),
            solver: SolverCounters::default(),
            prefilter_stats: PrefilterStats::default(),
            sketch_index: Mutex::new(None),
            shards: None,
        }
    }

    /// Number of targets.
    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    /// Number of deduplicated strand classes across the corpus.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Name of a target.
    pub fn target_name(&self, id: TargetId) -> &str {
        &self.targets[id.0].name
    }

    /// Decomposes a procedure according to the configured granularity.
    fn decompose(&self, proc_: &Procedure) -> Vec<esh_strands::Strand> {
        match self.config.granularity {
            Granularity::Strands => extract_proc_strands(proc_),
            Granularity::WholeBlocks => proc_
                .blocks
                .iter()
                .map(|b| esh_strands::Strand {
                    block: b.label.clone(),
                    indices: (0..b.insts.len()).collect(),
                    insts: b.insts.clone(),
                    inputs: Vec::new(),
                })
                .collect(),
        }
    }

    /// Adds a target procedure, returning its id.
    pub fn add_target(&mut self, name: impl Into<String>, proc_: &Procedure) -> TargetId {
        let mut per_class: HashMap<usize, u64> = HashMap::new();
        for strand in self.decompose(proc_) {
            let lifted = lift_strand(&strand);
            let vars = lifted.vars.len();
            if vars < self.config.vcp.min_strand_vars {
                continue;
            }
            let h = structural_hash(&lifted);
            let idx = match self.class_by_hash.get(&h) {
                Some(&i) => i,
                None => {
                    let signature = semantic_signature(&lifted);
                    let sketch = self
                        .config
                        .active_sketch()
                        .map(|cfg| compute_sketch(&lifted, cfg));
                    let i = self.classes.len();
                    self.classes.push(StrandClass {
                        proc_: lifted,
                        signature,
                        vars,
                        hash: h,
                        corpus_count: 0,
                        sketch,
                    });
                    self.class_by_hash.insert(h, i);
                    i
                }
            };
            self.classes[idx].corpus_count += 1;
            *per_class.entry(idx).or_default() += 1;
        }
        // New classes invalidate the lazily-built LSH index.
        *self.sketch_index.get_mut().expect("sketch index poisoned") = None;
        let id = TargetId(self.targets.len());
        // Canonical class order: S-VCP sums floats over this list, so it
        // must not inherit HashMap iteration order — two engines built
        // from the same corpus would otherwise disagree by ULPs (and
        // snapshots would not be byte-reproducible).
        let mut strands: Vec<(usize, u64)> = per_class.into_iter().collect();
        strands.sort_unstable_by_key(|&(class, _)| class);
        self.targets.push(TargetRecord {
            name: name.into(),
            strands,
            basic_blocks: proc_.blocks.len(),
        });
        id
    }

    /// Basic-block count recorded for a target.
    pub fn target_basic_blocks(&self, id: TargetId) -> usize {
        self.targets[id.0].basic_blocks
    }

    /// The most common strand classes in the corpus — the H0 mass the
    /// statistical layer discounts (§6.2: compiler-generated strands such
    /// as `push REG` prologues appear "unusually frequently" and carry no
    /// evidence). Returns `(corpus_count, variable_count, display)` for
    /// the `top` most frequent classes.
    pub fn common_classes(&self, top: usize) -> Vec<(u64, usize, String)> {
        let mut out: Vec<(u64, usize, String)> = self
            .classes
            .iter()
            .map(|c| (c.corpus_count, c.vars, c.proc_.name.clone()))
            .collect();
        out.sort_by_key(|e| std::cmp::Reverse(e.0));
        out.truncate(top);
        out
    }

    /// Decomposes, lifts, and dedups one query procedure into canonical
    /// strand order, with a cross-query strand memo. Signatures and
    /// sketches are pure functions of the lifted strand, so a strand
    /// shared by several batch items — or already indexed as a corpus
    /// class, the common case when queries come from the served corpus —
    /// is prepared exactly once per batch instead of once per occurrence.
    fn prepare_query_memo(
        &self,
        proc_: &Procedure,
        memo: &mut HashMap<u64, PreparedStrand>,
    ) -> Vec<QueryStrand> {
        let mut by_hash: HashMap<u64, QueryStrand> = HashMap::new();
        for strand in self.decompose(proc_) {
            let lifted = lift_strand(&strand);
            let vars = lifted.vars.len();
            if vars < self.config.vcp.min_strand_vars {
                continue;
            }
            let h = structural_hash(&lifted);
            if let Some(qs) = by_hash.get_mut(&h) {
                qs.count += 1;
                continue;
            }
            let prep = match memo.get(&h) {
                Some(p) => p.clone(),
                None => {
                    let p = self.prepare_strand(h, &lifted);
                    memo.insert(h, p.clone());
                    p
                }
            };
            by_hash.insert(
                h,
                QueryStrand {
                    signature: prep.signature,
                    sketch: prep.sketch,
                    proc_: lifted,
                    vars,
                    hash: h,
                    count: 1,
                },
            );
        }
        // Canonical order: HashMap iteration is seeded per instance, and
        // the GES sum runs over query strands — float addition must happen
        // in one fixed order or identical queries drift by ULPs between
        // runs (and between the daemon and the one-shot CLI).
        let mut strands: Vec<QueryStrand> = by_hash.into_values().collect();
        strands.sort_by_key(|s| s.hash);
        strands
    }

    /// Signature + sketch for one query strand. When the strand is
    /// already a corpus class (equal structural hash — the same identity
    /// the dedup and cache layers rely on), the class's stored artifacts
    /// are reused instead of recomputed; both are pure functions of the
    /// lifted strand, so the values are identical either way.
    fn prepare_strand(&self, h: u64, lifted: &Proc) -> PreparedStrand {
        let class = self.class_by_hash.get(&h).map(|&i| &self.classes[i]);
        let signature = match class {
            Some(c) => c.signature.clone(),
            None => semantic_signature(lifted),
        };
        let sketch = self.config.active_sketch().map(|cfg| {
            match class.and_then(|c| c.sketch.as_ref()) {
                Some(s) => s.clone(),
                None => compute_sketch(lifted, cfg),
            }
        });
        PreparedStrand { signature, sketch }
    }

    /// Returns the banded LSH index over the corpus sketches, building it
    /// on first use. Classes missing a persisted sketch (pre-v3 snapshots,
    /// or targets added while the tier was off) are sketched here — the
    /// forward-compat path: a v2 snapshot loads cleanly and pays the
    /// sketching cost once, on its first prefilter-enabled query.
    fn ensure_sketch_index(&self) -> Option<Arc<SketchIndex>> {
        let cfg = self.config.active_sketch()?;
        let mut slot = self.sketch_index.lock().expect("sketch index poisoned");
        if slot.is_none() {
            let sketches = self
                .classes
                .iter()
                .enumerate()
                .map(|(i, c)| match &c.sketch {
                    Some(s) => s.clone(),
                    // Missing sketches (pre-v3 snapshots, or a sharded
                    // index written without the tier) rebuild from the
                    // real procedure — on a lazily backed engine this
                    // loads the class's shard.
                    None => compute_sketch(&self.class_proc(i), cfg),
                })
                .collect();
            *slot = Some(Arc::new(SketchIndex::build(sketches, cfg)));
        }
        slot.clone()
    }

    /// Classes per work-stealing tile. Small enough that a tile of
    /// expensive verifier calls cannot straggle the whole matrix, large
    /// enough that queue contention on the atomic cursor is negligible.
    const VCP_TILE: usize = 32;

    /// A verifier session whose term pool has grown past this many terms
    /// is dropped at query end instead of returned to the session pool.
    const SESSION_TERM_CAP: usize = 2_000_000;

    /// Checks a verifier session out of the engine-owned pool so its term
    /// pool, verdict cache, and incremental solver stay warm across
    /// queries — not just across one query's tiles.
    fn checkout_session(&self) -> VerifierSession {
        self.sessions
            .lock()
            .expect("session pool poisoned")
            .pop()
            .unwrap_or_else(|| VerifierSession::with_config(self.config.equiv))
    }

    /// Returns a session for later queries unless its term pool outgrew
    /// the cap — past that point the memory cost outweighs what the warm
    /// caches save.
    fn return_session(&self, session: VerifierSession) {
        if session.pool().len() <= Self::SESSION_TERM_CAP {
            self.sessions
                .lock()
                .expect("session pool poisoned")
                .push(session);
        }
    }

    /// Computes the VCP matrices `query strand × corpus class` for a whole
    /// batch of prepared queries in one shared pass.
    ///
    /// Work is distributed dynamically: the flattened `(batch item, query
    /// strand, class-range)` tile space is consumed through one atomic
    /// cursor, so workers that land on cheap tiles (size-ratio or
    /// prefilter rejections, cache hits) immediately steal more instead of
    /// idling behind a static split — and tiles of different batch items
    /// interleave freely. Results for pairs that reach the verifier are
    /// memoized in the cross-query [`VcpCache`]. Cancellation stays
    /// per-item: a cancelled item's remaining tiles are skipped while the
    /// rest of the batch keeps computing; its partial matrix is discarded
    /// by the caller.
    /// On a lazily backed engine the same pass is the **fan-out** step:
    /// the flat tile space already spans every shard's class range, a
    /// pair that survives pricing pulls its shard (procedures + cache
    /// segment) into memory via [`ensure_class_shard`]
    /// (Self::ensure_class_shard), and `touched` records which `(item,
    /// shard)` pairs were consulted. The final row copy-back below is the
    /// merge step — because shards partition the class index space in
    /// order, it concatenates per-shard submatrices into exactly the
    /// matrix a resident engine computes, bit for bit.
    fn vcp_matrix_batch(
        &self,
        queries: &[Option<Vec<QueryStrand>>],
        cancels: &[&CancelToken],
        touched: &ShardTouch,
    ) -> (Vec<Vec<Vec<VcpPair>>>, Vec<Option<ShardError>>) {
        let threads = if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            self.config.threads
        };
        let nc = self.classes.len();
        let mut matrices: Vec<Vec<Vec<VcpPair>>> = queries
            .iter()
            .map(|q| vec![vec![VcpPair::default(); nc]; q.as_ref().map_or(0, |q| q.len())])
            .collect();
        let tiles_per_query = nc.div_ceil(Self::VCP_TILE);
        // Tile-space offsets per batch item: item `b` owns the global
        // tiles `[offsets[b], offsets[b + 1])`. Cancelled-at-prepare items
        // (`None`) own zero tiles.
        let mut offsets = Vec::with_capacity(queries.len() + 1);
        offsets.push(0usize);
        for q in queries {
            let nq = q.as_ref().map_or(0, |q| q.len());
            offsets.push(offsets.last().unwrap() + nq * tiles_per_query);
        }
        let total_tiles = *offsets.last().unwrap();
        // Per-item shard-failure latch: the first corrupted-shard error an
        // item hits is kept, the item's remaining tiles are skipped, and
        // the caller fails that item alone — neighbours keep computing.
        let shard_errors: Vec<std::sync::OnceLock<ShardError>> =
            (0..queries.len()).map(|_| std::sync::OnceLock::new()).collect();
        if total_tiles == 0 || nc == 0 {
            let errors = shard_errors.into_iter().map(|l| l.into_inner()).collect();
            return (matrices, errors);
        }
        let queries_ref = &queries;
        let offsets = &offsets;
        let cursor = AtomicUsize::new(0);
        let vcp_fp = self.config.vcp.fingerprint();
        let workers = threads.max(1).min(total_tiles);
        // Sketch tier context, resolved once before the workers spawn: the
        // LSH index over corpus sketches, one candidate mask per query
        // strand of every item (mask[ci] = class ci shares a band → exact
        // verify), and one batch-wide cache of probe sketches keyed by
        // structural hash — ambiguous pairs re-sketch per *strand*, not
        // per pair, so each side is probed at most once per batch no
        // matter how many ambiguous pairs (or batch items) it
        // participates in.
        struct SketchCtx {
            index: Arc<SketchIndex>,
            masks: Vec<Vec<Option<Vec<bool>>>>,
            margin: f64,
            window: f64,
            cfg: PrefilterConfig,
            probes: Mutex<HashMap<u64, Arc<SemanticSketch>>>,
        }
        impl SketchCtx {
            /// The cached probe sketch for the strand hashed `key`,
            /// computing it under the cache lock on first use (serializing
            /// duplicate computes is cheaper than racing the concrete
            /// evaluation). `compute` is fallible so a corrupted shard on
            /// the class side surfaces instead of panicking — and runs
            /// only on a cache miss, preserving shard-load laziness.
            fn probed(
                &self,
                key: u64,
                compute: impl FnOnce() -> Result<SemanticSketch, ShardError>,
            ) -> Result<Arc<SemanticSketch>, ShardError> {
                let mut map = self.probes.lock().expect("probe cache poisoned");
                match map.get(&key) {
                    Some(s) => Ok(s.clone()),
                    None => {
                        let s = Arc::new(compute()?);
                        map.insert(key, s.clone());
                        Ok(s)
                    }
                }
            }
        }
        let sketch_ctx: Option<SketchCtx> = self.ensure_sketch_index().map(|index| {
            let masks = queries
                .iter()
                .map(|q| {
                    q.as_ref().map_or_else(Vec::new, |q| {
                        q.iter()
                            .map(|s| s.sketch.as_ref().map(|s| index.candidates(s)))
                            .collect()
                    })
                })
                .collect();
            let cfg = self
                .config
                .active_sketch()
                .cloned()
                .unwrap_or_default();
            SketchCtx {
                index,
                masks,
                margin: cfg.exact_fallback_margin,
                window: cfg.probe_window(),
                cfg,
                probes: Mutex::new(HashMap::new()),
            }
        });
        let sketch_ctx = &sketch_ctx;
        // Whole-shard pruning (sub-linear fan-out): when the index shipped
        // per-shard band summaries, decide per `(item, shard)` — before
        // any per-cell work — whether every cell of the shard is provably
        // sketch-pruned ([`ShardBandSummary::can_skip`]). Skipped cells
        // stay at `VcpPair::default()`, exactly the value the per-cell
        // Prune path leaves, so matrices, H0 and scores are byte-identical
        // to the full fan-out; only the pricing CPU (and the prefilter
        // observability counters) are saved. The proof needs every strand
        // of the item sketched and `margin > window`; anything else keeps
        // the full fan-out.
        let shard_skip: Option<(Vec<u32>, Vec<Vec<bool>>)> =
            self.shards.as_ref().and_then(|lazy| {
                let summaries = lazy.summaries.as_ref()?;
                let ctx = sketch_ctx.as_ref()?;
                if ctx.margin <= ctx.window {
                    return None;
                }
                let limit = lazy.class_limit();
                let class_shard: Vec<u32> =
                    (0..limit).map(|ci| lazy.shard_of_class(ci) as u32).collect();
                let skip: Vec<Vec<bool>> = queries
                    .iter()
                    .map(|q| {
                        let all_sketched = q
                            .as_ref()
                            .is_some_and(|q| q.iter().all(|s| s.sketch.is_some()));
                        if !all_sketched {
                            return vec![false; summaries.len()];
                        }
                        let strands = q.as_ref().expect("checked above");
                        let keys: Vec<Vec<u64>> = strands
                            .iter()
                            .map(|s| {
                                s.sketch
                                    .as_ref()
                                    .expect("checked above")
                                    .band_keys(ctx.cfg.bands, ctx.cfg.rows)
                            })
                            .collect();
                        summaries
                            .iter()
                            .map(|sum| {
                                strands.iter().zip(&keys).all(|(s, k)| {
                                    sum.can_skip(
                                        s.sketch.as_ref().expect("checked above"),
                                        k,
                                        ctx.margin,
                                        ctx.window,
                                    )
                                })
                            })
                            .collect()
                    })
                    .collect();
                let pruned: u64 = skip
                    .iter()
                    .map(|row| row.iter().filter(|&&s| s).count() as u64)
                    .sum();
                lazy.add_pruned(pruned);
                Some((class_shard, skip))
            });
        let shard_skip = &shard_skip;
        // Demand-decode fan-out planner: before the tile workers start,
        // sweep the (item, strand, class) space with the *cheap* pricing
        // filters only — whole-shard prune, LSH candidate mask, size
        // ratio, signature overlap — and pre-decode the surviving
        // classes whose memoized verdict is not already cached, spread
        // across the same worker pool the tiles use. Purely an
        // optimization: the plan is conservative (a class it misses
        // decodes on demand inside its tile; a class it over-includes
        // wastes one decode), a decode never touches a VCP counter, and
        // decode errors are swallowed here so the authoritative tile
        // pass latches the typed corruption error for exactly the items
        // that touch the bad record.
        if let Some(lazy) = self.shards.as_ref().filter(|l| !l.eager) {
            let limit = lazy.class_limit().min(nc);
            let mut plan: Vec<(usize, Vec<u64>)> = Vec::new();
            for ci in 0..limit {
                let class = &self.classes[ci];
                let mut hashes: Vec<u64> = Vec::new();
                for (b, q) in queries_ref.iter().enumerate() {
                    let Some(query) = q else { continue };
                    if cancels[b].is_cancelled() {
                        continue;
                    }
                    if let Some((class_shard, skip)) = shard_skip {
                        if ci < class_shard.len() && skip[b][class_shard[ci] as usize] {
                            continue;
                        }
                    }
                    for (qi, qs) in query.iter().enumerate() {
                        if !size_ratio_ok(&self.config.vcp, qs.vars, class.vars) {
                            continue;
                        }
                        if self.config.prefilter {
                            let fwd = qs.signature.overlap_bound(&class.signature);
                            let bwd = class.signature.overlap_bound(&qs.signature);
                            if fwd < self.config.prefilter_threshold
                                && bwd < self.config.prefilter_threshold
                            {
                                continue;
                            }
                        }
                        if let Some(ctx) = sketch_ctx {
                            if let (Some(mask), Some(_)) = (&ctx.masks[b][qi], &qs.sketch) {
                                if !mask[ci] {
                                    continue;
                                }
                            }
                        }
                        if !hashes.contains(&qs.hash) {
                            hashes.push(qs.hash);
                        }
                    }
                }
                if !hashes.is_empty() {
                    plan.push((ci, hashes));
                }
            }
            if !plan.is_empty() {
                let plan = &plan;
                let plan_cursor = AtomicUsize::new(0);
                let decode_workers = workers.min(plan.len());
                std::thread::scope(|scope| {
                    for _ in 0..decode_workers {
                        let plan_cursor = &plan_cursor;
                        scope.spawn(move || loop {
                            let i = plan_cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(&(ci, ref hashes)) = plan.get(i) else { break };
                            let shard = lazy.shard_of_class(ci);
                            if lazy.ensure_loaded(shard, &self.cache).is_err() {
                                continue;
                            }
                            let ch = self.classes[ci].hash;
                            if hashes
                                .iter()
                                .any(|&qh| self.cache.peek(&(qh, ch, vcp_fp)).is_none())
                            {
                                let _ = lazy.proc_ref(ci, &self.cache);
                            }
                        });
                    }
                });
            }
        }
        let shard_errors_ref = &shard_errors;
        let tiles: Vec<(usize, usize, usize, Vec<VcpPair>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    let config = &self.config;
                    let classes = &self.classes;
                    let cache = &self.cache;
                    let solver = &self.solver;
                    let prefilter_stats = &self.prefilter_stats;
                    scope.spawn(move || {
                        let mut session = self.checkout_session();
                        let perf0 = session.stats().solver;
                        let mut out: Vec<(usize, usize, usize, Vec<VcpPair>)> = Vec::new();
                        loop {
                            let tile = cursor.fetch_add(1, Ordering::Relaxed);
                            if tile >= total_tiles {
                                break;
                            }
                            // Decode (item, strand, class-range) from the
                            // flat tile id.
                            let b = offsets.partition_point(|&o| o <= tile) - 1;
                            // Poll cancellation (and the shard-failure
                            // latch) between tiles: a timed-out, abandoned
                            // or corruption-failed item stops issuing
                            // verifier work within one tile's latency
                            // while the rest of the batch keeps going.
                            if cancels[b].is_cancelled() || shard_errors_ref[b].get().is_some() {
                                continue;
                            }
                            let local = tile - offsets[b];
                            let qi = local / tiles_per_query;
                            let start = (local % tiles_per_query) * Self::VCP_TILE;
                            let end = (start + Self::VCP_TILE).min(nc);
                            let query: &[QueryStrand] =
                                queries_ref[b].as_ref().expect("tiles only for live items");
                            let q = &query[qi];
                            let mut row = vec![VcpPair::default(); end - start];
                            for (k, class) in classes[start..end].iter().enumerate() {
                                let ci = start + k;
                                // Whole-shard prune: provably equivalent to
                                // the per-cell Prune below, decided without
                                // touching the class.
                                if let Some((class_shard, skip)) = shard_skip {
                                    if ci < class_shard.len()
                                        && skip[b][class_shard[ci] as usize]
                                    {
                                        continue;
                                    }
                                }
                                if !size_ratio_ok(&config.vcp, q.vars, class.vars) {
                                    continue;
                                }
                                if config.prefilter {
                                    let fwd = q.signature.overlap_bound(&class.signature);
                                    let bwd = class.signature.overlap_bound(&q.signature);
                                    if fwd < config.prefilter_threshold
                                        && bwd < config.prefilter_threshold
                                    {
                                        continue;
                                    }
                                }
                                // Sketch tier pricing. Every pair is priced
                                // by its containment bounds: both below the
                                // margin drops the pair to the zero pair,
                                // same as a legacy-signature rejection
                                // above (sound: the bounds never
                                // underestimate VCP, so no pair at or above
                                // the margin is ever skipped — and a
                                // below-margin pair contributes the
                                // no-evidence likelihood floor rather than
                                // an inflated estimate). Bounds inside the
                                // ambiguity window around the margin
                                // re-sketch both strands on extra probe
                                // vectors and re-apply the margin to the
                                // refined bounds; anything else goes to the
                                // exact verifier. An LSH band collision is
                                // recorded for observability; under the
                                // pre-probe rule (no ambiguity window —
                                // pre-v4 snapshot configs) a collision
                                // still forces exact verification, while
                                // staged pricing lets the margin prune
                                // spurious band matches too (a true
                                // same-source pair has bound 1.0 and always
                                // verifies either way).
                                if let Some(ctx) = sketch_ctx {
                                    if let (Some(mask), Some(qs)) = (&ctx.masks[b][qi], &q.sketch) {
                                        let collided = mask[ci];
                                        if collided {
                                            prefilter_stats.record_collision();
                                        }
                                        if !collided || ctx.window > 0.0 {
                                            let ts = ctx.index.sketch(ci);
                                            let c_q = qs.containment_in(ts);
                                            let c_t = ts.containment_in(qs);
                                            match bounds_decision(
                                                c_q, c_t, ctx.margin, ctx.window,
                                            ) {
                                                SketchDecision::Prune => {
                                                    prefilter_stats.record_pruned();
                                                    continue;
                                                }
                                                SketchDecision::Probe => {
                                                    prefilter_stats.record_probe();
                                                    let pair = ctx
                                                        .probed(q.hash, || {
                                                            Ok(compute_probe_sketch(
                                                                &q.proc_, &ctx.cfg,
                                                            ))
                                                        })
                                                        .and_then(|pq| {
                                                            let pt = ctx.probed(class.hash, || {
                                                                if let Some(s) =
                                                                    self.ensure_class_shard(ci)?
                                                                {
                                                                    touched.mark(b, s);
                                                                }
                                                                let tp =
                                                                    self.class_proc_checked(ci)?;
                                                                Ok(compute_probe_sketch(
                                                                    &tp, &ctx.cfg,
                                                                ))
                                                            })?;
                                                            Ok((pq, pt))
                                                        });
                                                    let (pq, pt) = match pair {
                                                        Ok(p) => p,
                                                        Err(e) => {
                                                            let _ = shard_errors_ref[b].set(e);
                                                            continue;
                                                        }
                                                    };
                                                    let r_q = pq.containment_in(&pt);
                                                    let r_t = pt.containment_in(&pq);
                                                    if r_q < ctx.margin && r_t < ctx.margin {
                                                        prefilter_stats.record_pruned();
                                                        continue;
                                                    }
                                                    prefilter_stats.record_probe_escalation();
                                                    prefilter_stats.record_fallback();
                                                }
                                                SketchDecision::Exact => {
                                                    prefilter_stats.record_fallback();
                                                }
                                            }
                                        }
                                    }
                                }
                                // The pair survived pricing: open its
                                // shard *before* the counted lookup so the
                                // persisted cache segment can answer it
                                // (open-before-lookup invariant). The
                                // class record itself is only decoded on a
                                // miss — a cache hit never pays the
                                // decode.
                                match self.ensure_class_shard(ci) {
                                    Ok(Some(s)) => touched.mark(b, s),
                                    Ok(None) => {}
                                    Err(e) => {
                                        let _ = shard_errors_ref[b].set(e);
                                        continue;
                                    }
                                }
                                let key = (q.hash, class.hash, vcp_fp);
                                row[k] = match cache.get(&key) {
                                    Some(v) => v,
                                    None => {
                                        let tproc = match self.class_proc_checked(ci) {
                                            Ok(p) => p,
                                            Err(e) => {
                                                let _ = shard_errors_ref[b].set(e);
                                                continue;
                                            }
                                        };
                                        let v = vcp_pair(
                                            &mut session,
                                            &q.proc_,
                                            &tproc,
                                            &config.vcp,
                                        );
                                        cache.insert(key, v);
                                        v
                                    }
                                };
                            }
                            out.push((b, qi, start, row));
                        }
                        solver.add(&session.stats().solver.delta_since(&perf0));
                        self.return_session(session);
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        for (b, qi, start, row) in tiles {
            matrices[b][qi][start..start + row.len()].copy_from_slice(&row);
        }
        let errors = shard_errors.into_iter().map(|l| l.into_inner()).collect();
        (matrices, errors)
    }

    /// Scores every target against `proc_`.
    ///
    /// Panics on a corrupted backing shard; serving layers use
    /// [`SimilarityEngine::query_batch`] to get the typed
    /// [`QueryError::Corrupted`] instead.
    pub fn query(&self, proc_: &Procedure) -> QueryScores {
        self.query_cancellable(proc_, &CancelToken::new())
            .unwrap_or_else(|e| panic!("uncancellable query failed: {e}"))
    }

    /// Like [`SimilarityEngine::query`], but abandons the computation as
    /// soon as `cancel` fires — the serving layer's per-request deadline
    /// hook. Cancellation is cooperative: VCP workers poll the token
    /// between tiles, stop issuing verifier calls, and the partial matrix
    /// is discarded. Completed pairs stay memoized in the cross-query
    /// cache, so a retried query resumes from where the deadline struck.
    ///
    /// Implemented as a batch of one: single queries and batched queries
    /// run the exact same code path, which is what makes the serving
    /// layer's batched responses byte-identical to one-shot `esh query`.
    pub fn query_cancellable(
        &self,
        proc_: &Procedure,
        cancel: &CancelToken,
    ) -> Result<QueryScores, QueryError> {
        self.query_batch(&[BatchQuery {
            proc_,
            cancel: cancel.clone(),
        }])
        .pop()
        .expect("one batch item, one result")
    }

    /// Scores a whole batch of queries in one shared engine pass — the
    /// serving layer's coalescing entry point.
    ///
    /// Per-item work is amortized across the batch everywhere the result
    /// cannot tell: strand classes are prepared once per distinct strand
    /// (signatures and sketches are pure functions of the lifted strand),
    /// the VCP matrices compute in a single work-stealing pass over the
    /// flattened `(item, strand, class-range)` tile space, probe-sketch
    /// rounds are computed once per strand per batch, and the refine pass
    /// checks out one verifier session for the whole batch. Every item's
    /// scores are still built from its own matrix with its own frozen H0,
    /// so each result is byte-identical to what a sequential
    /// [`query`](Self::query) of that procedure would return — the serve
    /// byte-identity contract extends to batched execution.
    ///
    /// Failure is per item: an item whose token fires returns
    /// `Err(QueryError::Cancelled)`, and an item that touched a corrupted
    /// shard returns `Err(QueryError::Corrupted)` naming the shard —
    /// without disturbing its neighbours (queries that avoid the bad
    /// shard keep serving).
    pub fn query_batch(&self, items: &[BatchQuery<'_>]) -> Vec<Result<QueryScores, QueryError>> {
        let mut prep_memo: HashMap<u64, PreparedStrand> = HashMap::new();
        let prepared: Vec<Option<Vec<QueryStrand>>> = items
            .iter()
            .map(|it| {
                (!it.cancel.is_cancelled())
                    .then(|| self.prepare_query_memo(it.proc_, &mut prep_memo))
            })
            .collect();
        let cancels: Vec<&CancelToken> = items.iter().map(|it| &it.cancel).collect();
        // Fan-out bookkeeping for lazily backed engines: which shards
        // each item consulted, across the matrix pass *and* refine.
        let touched = ShardTouch::new(
            items.len(),
            self.shards.as_ref().map_or(0, |l| l.shard_count()),
        );
        let (matrices, shard_errors) = self.vcp_matrix_batch(&prepared, &cancels, &touched);
        // Refine resources shared across the batch: one verifier session,
        // one probe-sketch cache (probe sketches are pure per strand, so
        // sharing them across items cannot change any item's result).
        let refine_enabled = self
            .config
            .active_sketch()
            .is_some_and(|cfg| cfg.effective_refine_top_k() > 0)
            && !self.targets.is_empty()
            && self.ensure_sketch_index().is_some();
        let mut refine_session = refine_enabled.then(|| {
            let s = self.checkout_session();
            let perf0 = s.stats().solver;
            (s, perf0)
        });
        let mut probes: HashMap<u64, SemanticSketch> = HashMap::new();
        let mut results = Vec::with_capacity(items.len());
        for (i, it) in items.iter().enumerate() {
            let (Some(query), matrix) = (&prepared[i], &matrices[i]) else {
                results.push(Err(QueryError::Cancelled));
                continue;
            };
            if let Some(e) = &shard_errors[i] {
                results.push(Err(QueryError::Corrupted(e.clone())));
                continue;
            }
            if it.cancel.is_cancelled() {
                results.push(Err(QueryError::Cancelled));
                continue;
            }
            let mut scores = self.score_targets(query, matrix);
            let refined = match &mut refine_session {
                Some((session, _)) => self.refine_served_window(
                    query,
                    matrix,
                    &mut scores,
                    &it.cancel,
                    session,
                    &mut probes,
                    i,
                    &touched,
                ),
                None => Ok(()),
            };
            results.push(refined.map(|()| QueryScores {
                scores,
                query_strands: query.len(),
                query_strand_occurrences: query.iter().map(|q| q.count as usize).sum(),
            }));
        }
        if let Some((session, perf0)) = refine_session {
            self.solver.add(&session.stats().solver.delta_since(&perf0));
            self.return_session(session);
        }
        if let Some(lazy) = &self.shards {
            lazy.add_fanout(touched.count());
        }
        results
    }

    /// H0 per query strand: corpus-wide mean over every strand occurrence
    /// (weighted by class multiplicity). Pure in the matrix — the refine
    /// pass reuses the estimated matrix's accumulators verbatim so its
    /// scores stay a pure function of the query, corpus and config.
    fn h0_accumulators(&self, query: &[QueryStrand], matrix: &[Vec<VcpPair>]) -> Vec<H0Accumulator> {
        let mut h0: Vec<H0Accumulator> = vec![H0Accumulator::default(); query.len()];
        for (qi, row) in matrix.iter().enumerate() {
            for (ci, v) in row.iter().enumerate() {
                h0[qi].add(v.q_in_t, self.classes[ci].corpus_count);
            }
        }
        h0
    }

    /// Scores every target from a computed VCP matrix. Pure in the matrix;
    /// float summation order must stay fixed (targets in insertion order,
    /// query strands in canonical hash order) so concurrent and offline
    /// rankings agree bit-for-bit.
    fn score_targets(&self, query: &[QueryStrand], matrix: &[Vec<VcpPair>]) -> Vec<TargetScore> {
        let h0 = self.h0_accumulators(query, matrix);
        let mut scores = Vec::with_capacity(self.targets.len());
        for (ti, target) in self.targets.iter().enumerate() {
            let mut ges_terms = Vec::with_capacity(query.len());
            let mut slog_terms = Vec::with_capacity(query.len());
            for (qi, q) in query.iter().enumerate() {
                let mut max_vcp = 0.0f64;
                for (ci, _) in &target.strands {
                    let v = matrix[qi][*ci].q_in_t;
                    if v > max_vcp {
                        max_vcp = v;
                    }
                }
                let l_esh = les(likelihood(max_vcp), h0[qi].mean_pr());
                let l_slog = les(max_vcp.max(1e-12), h0[qi].mean_vcp());
                ges_terms.push(l_esh * q.count as f64);
                slog_terms.push(l_slog * q.count as f64);
            }
            // S-VCP: Σ over target strand occurrences of the best VCP of
            // that strand against any query strand (no statistics).
            let mut s_vcp = 0.0;
            for (ci, n) in &target.strands {
                let best = matrix
                    .iter()
                    .map(|row| row[*ci].t_in_q)
                    .fold(0.0f64, f64::max);
                s_vcp += best * *n as f64;
            }
            scores.push(TargetScore {
                target: TargetId(ti),
                name: target.name.clone(),
                ges: ges(ges_terms),
                s_log: ges(slog_terms),
                s_vcp,
            });
        }
        scores
    }

    /// One refined target's score, rebuilt from its **exact** per-query-
    /// strand and per-class VCP maxima plus the estimated matrix's H0
    /// accumulators. Mirrors [`SimilarityEngine::score_targets`]
    /// float-for-float: the maxima are the very values an exhaustive
    /// matrix's column scans would produce, so S-VCP comes out
    /// bit-identical to exhaustive scoring, and GES differs from it only
    /// by the per-strand H0 offset every target shares.
    fn score_refined_target(
        &self,
        ti: usize,
        query: &[QueryStrand],
        max_q: &[f64],
        max_t: &HashMap<usize, f64>,
        h0: &[H0Accumulator],
    ) -> TargetScore {
        let target = &self.targets[ti];
        let mut ges_terms = Vec::with_capacity(query.len());
        let mut slog_terms = Vec::with_capacity(query.len());
        for (qi, q) in query.iter().enumerate() {
            let max_vcp = max_q[qi];
            let l_esh = les(likelihood(max_vcp), h0[qi].mean_pr());
            let l_slog = les(max_vcp.max(1e-12), h0[qi].mean_vcp());
            ges_terms.push(l_esh * q.count as f64);
            slog_terms.push(l_slog * q.count as f64);
        }
        let mut s_vcp = 0.0;
        for (ci, n) in &target.strands {
            s_vcp += max_t.get(ci).copied().unwrap_or(0.0) * *n as f64;
        }
        TargetScore {
            target: TargetId(ti),
            name: target.name.clone(),
            ges: ges(ges_terms),
            s_log: ges(slog_terms),
            s_vcp,
        }
    }

    /// The refine-top-K second pass: makes every score behind the served
    /// ranking window **exact** (scanning 2× the served depth so rank-K
    /// membership is decided among exact scores, not estimates), then
    /// re-ranks — to a fixpoint, since exact repricing can pull new
    /// targets into the window.
    ///
    /// For each window target, cells already verified (band collisions,
    /// margin fallbacks, earlier queries) are pulled from the [`VcpCache`]
    /// — no solver work. Remaining cells were sketch-pruned; they are
    /// verified in descending-bound order, but **only while their
    /// containment bound can still beat the target's current exact
    /// maximum** (per query strand for GES/S-LOG, per class for S-VCP).
    /// A skipped cell provably cannot change either maximum — the bound
    /// never underestimates VCP — so each window target's final maxima are
    /// its true maxima, whatever subset of cells the cache already knew.
    ///
    /// Scores are rebuilt from those maxima via
    /// [`SimilarityEngine::score_refined_target`], with the H0
    /// accumulators **frozen at the estimated matrix**. The matrix itself
    /// is never mutated: which cells the pass verifies (and which it
    /// dominance-skips or finds pre-cached) depends on cross-query cache
    /// state, so folding those values back into H0 would make served GES
    /// depend on engine history — the serving layer's byte-identity
    /// contract (`bench-serve`) demands that a query's response be a pure
    /// function of the query, corpus and config. With frozen H0 and true
    /// maxima, it is. The served window's internal order equals the
    /// exhaustive engine's relative order of those targets: LES
    /// differences between targets share the per-strand H0 term, which
    /// cancels (absolute GES still differs from the exhaustive engine by
    /// that H0 offset, identically for every window target).
    ///
    /// Terminates because the refined-target set grows monotonically and
    /// is bounded by the corpus. No-op when the sketch tier or
    /// [`PrefilterConfig::refine_top_k`] is off.
    #[allow(clippy::too_many_arguments)]
    fn refine_served_window(
        &self,
        query: &[QueryStrand],
        matrix: &[Vec<VcpPair>],
        scores: &mut [TargetScore],
        cancel: &CancelToken,
        session: &mut VerifierSession,
        probes: &mut HashMap<u64, SemanticSketch>,
        item: usize,
        touched: &ShardTouch,
    ) -> Result<(), QueryError> {
        let Some(cfg) = self.config.active_sketch().cloned() else {
            return Ok(());
        };
        let k = cfg.effective_refine_top_k();
        if k == 0 || query.is_empty() || self.targets.is_empty() {
            return Ok(());
        }
        if self.ensure_sketch_index().is_none() {
            return Ok(());
        }
        // Frozen at the estimated matrix (see the method docs): every
        // refined score shares these accumulators, keeping responses
        // cache-state-independent.
        let h0 = self.h0_accumulators(query, matrix);
        let vcp_fp = self.config.vcp.fingerprint();
        let mut refined_targets = vec![false; self.targets.len()];
        let mut refined_pairs = 0u64;
        // Probe sketches (base battery + probe rounds) for refine's
        // bounds, cached per strand (by structural hash, shared across a
        // whole batch of queries): a few extra concrete-eval rounds per
        // side buy the tightest available upper bound, and every
        // tightened bound is another chance to dominance-skip an exact
        // verification.
        self.prefilter_stats.record_refine_pass();
        let outcome = 'refine: loop {
            // The served window under the current scores — the same order
            // `QueryScores::ranked` serves (GES desc, TargetId asc).
            let mut order: Vec<usize> = (0..scores.len()).collect();
            order.sort_by(|&a, &b| {
                scores[b]
                    .ges
                    .partial_cmp(&scores[a].ges)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(scores[a].target.cmp(&scores[b].target))
            });
            // 2× slack: refining only the estimated top-K decides the
            // window *boundary* on estimated scores — a target whose
            // pruned evidence would lift it from rank 12 to rank 8 never
            // enters the window. Scanning twice the served depth prices
            // the contenders exactly too, so membership at rank K is
            // decided among exact scores (bounded, and deterministic
            // because the scan depth depends only on config).
            let pending: Vec<usize> = order
                .into_iter()
                .take(k.saturating_mul(2))
                .filter(|&ti| !refined_targets[ti])
                .collect();
            if pending.is_empty() {
                break Ok(());
            }
            for ti in pending {
                refined_targets[ti] = true;
                if cancel.is_cancelled() {
                    break 'refine Err(QueryError::Cancelled);
                }
                let strands = &self.targets[ti].strands;
                // Exact maxima this target already has: per query strand
                // (drives GES/S-LOG) and per class (drives S-VCP). Seeded
                // from cache-known cells; unknown cells are sketch-pruned.
                let mut max_q = vec![0.0f64; query.len()];
                let mut max_t: HashMap<usize, f64> = HashMap::new();
                // Sketch-pruned cells: `(bound_q, bound_t, qi, ci)`.
                let mut unknown: Vec<(f64, f64, usize, usize)> = Vec::new();
                for &(ci, _) in strands {
                    let class = &self.classes[ci];
                    for (qi, q) in query.iter().enumerate() {
                        if !size_ratio_ok(&self.config.vcp, q.vars, class.vars) {
                            continue;
                        }
                        if self.config.prefilter {
                            let fwd = q.signature.overlap_bound(&class.signature);
                            let bwd = class.signature.overlap_bound(&q.signature);
                            if fwd < self.config.prefilter_threshold
                                && bwd < self.config.prefilter_threshold
                            {
                                continue;
                            }
                        }
                        // The window scan must see the persisted cache
                        // segment of every class it peeks, so the shard
                        // opens first (open-before-lookup) — and counts
                        // toward this item's fan-out. The record itself
                        // stays undecoded unless the peek misses.
                        match self.ensure_class_shard(ci) {
                            Ok(Some(s)) => touched.mark(item, s),
                            Ok(None) => {}
                            Err(e) => break 'refine Err(QueryError::Corrupted(e)),
                        }
                        let key = (q.hash, class.hash, vcp_fp);
                        // `peek`, not `get`: this scan separates known from
                        // pruned cells and must not distort the miss
                        // counter the benches report as verifier calls.
                        if let Some(v) = self.cache.peek(&key) {
                            max_q[qi] = max_q[qi].max(v.q_in_t);
                            let m = max_t.entry(ci).or_insert(0.0);
                            *m = m.max(v.t_in_q);
                        } else {
                            let (c_q, c_t) = if q.sketch.is_some() {
                                probes
                                    .entry(q.hash)
                                    .or_insert_with(|| compute_probe_sketch(&q.proc_, &cfg));
                                if let std::collections::hash_map::Entry::Vacant(slot) =
                                    probes.entry(class.hash)
                                {
                                    // Fallible decode: under demand
                                    // decoding this may be the first time
                                    // the record's bytes are checksummed.
                                    let pt = match self.class_proc_checked(ci) {
                                        Ok(p) => compute_probe_sketch(&p, &cfg),
                                        Err(e) => break 'refine Err(QueryError::Corrupted(e)),
                                    };
                                    slot.insert(pt);
                                }
                                let pq = &probes[&q.hash];
                                let pt = &probes[&class.hash];
                                (pq.containment_in(pt), pt.containment_in(pq))
                            } else {
                                // No sketch to bound with: always verify.
                                (1.0, 1.0)
                            };
                            unknown.push((c_q, c_t, qi, ci));
                        }
                    }
                }
                // Verify pruned cells best-bound-first so early exact
                // results raise the maxima and dominate the rest away.
                unknown.sort_by(|a, b| {
                    b.0.max(b.1)
                        .partial_cmp(&a.0.max(a.1))
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.2.cmp(&b.2))
                        .then(a.3.cmp(&b.3))
                });
                for (c_q, c_t, qi, ci) in unknown {
                    let dominated = c_q <= max_q[qi] && c_t <= *max_t.get(&ci).unwrap_or(&0.0);
                    if dominated {
                        // True VCP ≤ bound ≤ an exact value already in the
                        // matrix: this cell cannot move any maximum.
                        continue;
                    }
                    if cancel.is_cancelled() {
                        break 'refine Err(QueryError::Cancelled);
                    }
                    let q = &query[qi];
                    let class = &self.classes[ci];
                    let key = (q.hash, class.hash, vcp_fp);
                    // `peek` again (see above): refine's lookups are
                    // state-dependent (a warm repeat verifies nothing), so
                    // counting them would make the hit/miss totals
                    // nondeterministic. [`PrefilterStats::refined_pairs`]
                    // carries refine's verifier work instead. The re-peek
                    // also picks up a value a concurrent query inserted
                    // since the scan.
                    let v = match self.cache.peek(&key) {
                        Some(v) => v,
                        None => {
                            let tproc = match self.class_proc_checked(ci) {
                                Ok(p) => p,
                                Err(e) => break 'refine Err(QueryError::Corrupted(e)),
                            };
                            let v = vcp_pair(session, &q.proc_, &tproc, &self.config.vcp);
                            self.cache.insert(key, v);
                            refined_pairs += 1;
                            v
                        }
                    };
                    max_q[qi] = max_q[qi].max(v.q_in_t);
                    let m = max_t.entry(ci).or_insert(0.0);
                    *m = m.max(v.t_in_q);
                }
                // Exact maxima in hand: rebuild this target's score
                // against the frozen H0. `scores` is in target order
                // (score_targets builds it that way), so `ti` indexes it.
                scores[ti] = self.score_refined_target(ti, query, &max_q, &max_t, &h0);
            }
        };
        self.prefilter_stats.record_refined_pairs(refined_pairs);
        outcome
    }

    /// Calibrates [`PrefilterConfig::exact_fallback_margin`] from a
    /// held-out sample of this corpus and installs the chosen margin.
    ///
    /// Samples up to `sample_pairs` deterministic pseudo-random distinct
    /// class pairs that survive the size and legacy-signature filters,
    /// prices each pair's sketch containment bound **and** exact VCP, and
    /// picks the largest grid margin whose would-pruned samples all have
    /// exact VCP at most `max_pruned_vcp` (see
    /// [`calibrated_margin`](crate::prefilter::calibrated_margin)).
    ///
    /// Returns `None` when the sketch tier is off, the corpus has fewer
    /// than two classes, or no sampled pair survives the filters. Exact
    /// results are memoized in the [`VcpCache`], so calibration work is
    /// shared with later queries. Note the installed margin changes the
    /// config fingerprint — calibrate before saving a snapshot, not after
    /// loading one.
    pub fn calibrate_margin(
        &mut self,
        sample_pairs: usize,
        max_pruned_vcp: f64,
    ) -> Option<MarginCalibration> {
        let cfg = *self.config.active_sketch()?;
        let n = self.classes.len();
        if n < 2 || sample_pairs == 0 {
            return None;
        }
        let vcp_fp = self.config.vcp.fingerprint();
        let mut session = self.checkout_session();
        let perf0 = session.stats().solver;
        let mut samples = Vec::with_capacity(sample_pairs);
        let mut seen = std::collections::HashSet::new();
        let mut sketches: HashMap<usize, SemanticSketch> = HashMap::new();
        // Deterministic pseudo-random pair stream: the sample (and hence
        // the calibrated margin) is a pure function of the corpus.
        for draw in 0..(sample_pairs as u64).saturating_mul(64) {
            if samples.len() >= sample_pairs {
                break;
            }
            let a = (stable_hash64([0x6361_6c69_u64, draw]) % n as u64) as usize;
            let b = (stable_hash64([0x6d61_7267_u64, draw]) % n as u64) as usize;
            if a == b {
                continue;
            }
            let (a, b) = (a.min(b), a.max(b));
            if !seen.insert((a, b)) {
                continue;
            }
            let (qa, qb) = (&self.classes[a], &self.classes[b]);
            if !size_ratio_ok(&self.config.vcp, qa.vars, qb.vars) {
                continue;
            }
            if self.config.prefilter {
                let fwd = qa.signature.overlap_bound(&qb.signature);
                let bwd = qb.signature.overlap_bound(&qa.signature);
                if fwd < self.config.prefilter_threshold && bwd < self.config.prefilter_threshold {
                    continue;
                }
            }
            for i in [a, b] {
                sketches.entry(i).or_insert_with(|| match &self.classes[i].sketch {
                    Some(s) => s.clone(),
                    None => compute_sketch(&self.class_proc(i), &cfg),
                });
            }
            let bound = sketches[&a]
                .containment_in(&sketches[&b])
                .max(sketches[&b].containment_in(&sketches[&a]));
            // Exact pricing only where it can matter: a sample whose
            // *bound* already clears the safety cap has exact VCP ≤ bound
            // ≤ cap and can never veto a margin, so recording the bound
            // as its (upper-bounded) exact value leaves the calibration
            // decision unchanged and skips the solver entirely. Only
            // samples in the risky band above the cap pay for a
            // verification.
            let exact = if bound <= max_pruned_vcp {
                bound
            } else {
                // Load-before-lookup (see `ensure_class_shard`): the
                // segment owning `qb.hash`'s entry must be resident
                // before the counted `get`. Calibration is a cold offline
                // path with no error channel, so corruption panics here.
                self.ensure_class_shard(b).unwrap_or_else(|e| panic!("{e}"));
                let key = (qa.hash, qb.hash, vcp_fp);
                let v = match self.cache.get(&key) {
                    Some(v) => v,
                    None => {
                        let v = vcp_pair(
                            &mut session,
                            &self.class_proc(a),
                            &self.class_proc(b),
                            &self.config.vcp,
                        );
                        self.cache.insert(key, v);
                        v
                    }
                };
                v.q_in_t.max(v.t_in_q)
            };
            samples.push(MarginSample { bound, exact });
        }
        self.solver.add(&session.stats().solver.delta_since(&perf0));
        self.return_session(session);
        if samples.is_empty() {
            return None;
        }
        let cal = calibrated_margin(&samples, max_pruned_vcp);
        if let Some(sketch) = &mut self.config.sketch {
            sketch.exact_fallback_margin = cal.margin;
        }
        Some(cal)
    }

    /// Overrides the worker-thread count for subsequent queries. Threads
    /// only change scheduling, never scores (the VCP matrix is a pure
    /// function per cell), so this is safe to adjust after loading a
    /// snapshot — a daemon running N concurrent queries over one shared
    /// engine caps each query's parallelism this way instead of letting
    /// every request claim the whole machine.
    pub fn set_threads(&mut self, threads: usize) {
        self.config.threads = threads;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esh_cc::{Compiler, Vendor, VendorVersion};
    use esh_minic::demo;

    fn quick_config() -> EngineConfig {
        EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        }
    }

    fn gcc() -> Compiler {
        Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9))
    }

    fn clang() -> Compiler {
        Compiler::new(Vendor::Clang, VendorVersion::new(3, 5))
    }

    fn icc() -> Compiler {
        Compiler::new(Vendor::Icc, VendorVersion::new(15, 0))
    }

    #[test]
    fn cross_compiler_query_ranks_true_positive_first() {
        let q_src = demo::heartbleed_like();
        let query = gcc().compile_function(&q_src);
        let mut engine = SimilarityEngine::new(quick_config());
        let tp = engine.add_target("heartbleed-clang", &clang().compile_function(&q_src));
        for (i, (_, f)) in demo::cve_functions().into_iter().enumerate().skip(1) {
            engine.add_target(format!("distractor-{i}"), &clang().compile_function(&f));
        }
        let scores = engine.query(&query);
        let ranked = scores.ranked();
        assert_eq!(
            ranked[0].target, tp,
            "true positive must rank first: {ranked:#?}"
        );
        assert!(ranked[0].ges > ranked[1].ges);
    }

    #[test]
    fn self_query_dominates() {
        let f = demo::wget_like();
        let p = icc().compile_function(&f);
        let mut engine = SimilarityEngine::new(quick_config());
        let me = engine.add_target("self", &p);
        engine.add_target("other", &icc().compile_function(&demo::venom_like()));
        let scores = engine.query(&p);
        assert_eq!(scores.ranked()[0].target, me);
    }

    #[test]
    fn scores_are_asymmetric() {
        // GES(q|t) need not equal GES(t|q) (Figure 6, observation 2):
        // querying a small procedure against a large one is not the same
        // as the reverse, because the sum runs over the query's strands.
        let a = gcc().compile_function(&demo::ws_snmp_like());
        let b = icc().compile_function(&demo::wget_like());
        let mut e1 = SimilarityEngine::new(quick_config());
        e1.add_target("b", &b);
        let ab = e1.query(&a).scores[0].ges;
        let mut e2 = SimilarityEngine::new(quick_config());
        e2.add_target("a", &a);
        let ba = e2.query(&b).scores[0].ges;
        assert!(
            (ab - ba).abs() > 1e-9,
            "expected asymmetry, got {ab} vs {ba}"
        );
    }

    #[test]
    fn normalized_scores_are_in_unit_range() {
        let f = demo::venom_like();
        let mut engine = SimilarityEngine::new(quick_config());
        engine.add_target("a", &gcc().compile_function(&f));
        engine.add_target("b", &clang().compile_function(&demo::wget_like()));
        engine.add_target("c", &icc().compile_function(&demo::ffmpeg_like()));
        let scores = engine.query(&clang().compile_function(&f));
        for (_, v) in scores.normalized() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn whole_block_granularity_still_retrieves_but_differs() {
        // The §3.2 ablation: whole-block units also work on clean pairs,
        // but produce a different decomposition.
        let f = demo::heartbleed_like();
        let config = EngineConfig {
            granularity: Granularity::WholeBlocks,
            threads: 2,
            ..EngineConfig::default()
        };
        let mut engine = SimilarityEngine::new(config);
        let tp = engine.add_target("tp", &clang().compile_function(&f));
        engine.add_target("fp", &clang().compile_function(&demo::venom_like()));
        let scores = engine.query(&gcc().compile_function(&f));
        assert_eq!(scores.ranked()[0].target, tp);

        let mut strands_engine = SimilarityEngine::new(quick_config());
        strands_engine.add_target("tp", &clang().compile_function(&f));
        assert_ne!(
            strands_engine.class_count(),
            engine.class_count() - 1, // minus the venom target's classes... counts differ anyway
            "granularities should decompose differently"
        );
    }

    #[test]
    fn common_classes_report_is_sorted() {
        let f = demo::saturating_sum();
        let mut engine = SimilarityEngine::new(quick_config());
        for k in 0..3 {
            engine.add_target(format!("t{k}"), &gcc().compile_function(&f));
        }
        let report = engine.common_classes(5);
        assert!(!report.is_empty());
        assert!(
            report.windows(2).all(|w| w[0].0 >= w[1].0),
            "sorted by count"
        );
        // Identical targets stack counts on the same classes.
        assert!(report[0].0 >= 3);
    }

    #[test]
    fn cancelled_token_aborts_query_and_keeps_engine_usable() {
        let f = demo::heartbleed_like();
        let mut engine = SimilarityEngine::new(quick_config());
        let tp = engine.add_target("tp", &clang().compile_function(&f));
        engine.add_target("fp", &clang().compile_function(&demo::venom_like()));
        let q = gcc().compile_function(&f);

        let cancel = CancelToken::new();
        cancel.cancel();
        assert!(matches!(
            engine.query_cancellable(&q, &cancel),
            Err(QueryError::Cancelled)
        ));

        // An expired deadline behaves identically.
        let expired = CancelToken::with_deadline(Instant::now());
        assert!(matches!(
            engine.query_cancellable(&q, &expired),
            Err(QueryError::Cancelled)
        ));

        // The engine is untouched: a live token still completes and ranks.
        let live = CancelToken::new();
        let scores = engine.query_cancellable(&q, &live).unwrap();
        assert_eq!(scores.ranked()[0].target, tp);
    }

    #[test]
    fn ranked_breaks_exact_score_ties_by_target_id() {
        // Hand-built equal scores in shuffled insertion order: the tie
        // must break by ascending TargetId, not by insertion position.
        let mk = |id: usize, v: f64| TargetScore {
            target: TargetId(id),
            name: format!("t{id}"),
            ges: v,
            s_log: v,
            s_vcp: v,
        };
        let scores = QueryScores {
            scores: vec![mk(3, 1.5), mk(1, 1.5), mk(2, 7.0), mk(0, 1.5)],
            query_strands: 1,
            query_strand_occurrences: 1,
        };
        for mode in [ScoringMode::Esh, ScoringMode::SLog, ScoringMode::SVcp] {
            let ids: Vec<usize> = scores.ranked_by(mode).iter().map(|s| s.target.0).collect();
            assert_eq!(ids, vec![2, 0, 1, 3], "mode {mode:?}");
        }
    }

    #[test]
    fn sketch_prefilter_skips_solver_work_but_keeps_top_rank() {
        // Same corpus, same query: the sketch tier must preserve the top
        // rank while issuing strictly fewer verifier calls (cache misses
        // count vcp_pair invocations).
        let f = demo::heartbleed_like();
        let corpus: Vec<_> = demo::cve_functions()
            .into_iter()
            .map(|(name, p)| (name, clang().compile_function(&p)))
            .collect();
        let q = gcc().compile_function(&f);

        // Refinement off: the whole 8-target corpus fits inside the
        // default K=10 window, so refine would re-price every pair and
        // erase the solver saving this test asserts.
        let mut on = SimilarityEngine::new(EngineConfig {
            sketch: Some(PrefilterConfig {
                refine_top_k: None,
                ..PrefilterConfig::default()
            }),
            ..quick_config()
        });
        let mut off = SimilarityEngine::new(EngineConfig {
            sketch: None,
            ..quick_config()
        });
        for (name, p) in &corpus {
            on.add_target(*name, p);
            off.add_target(*name, p);
        }
        let ranked_on = on.query(&q);
        let ranked_off = off.query(&q);
        assert_eq!(
            ranked_on.ranked()[0].target,
            ranked_off.ranked()[0].target,
            "sketch tier changed the top-1 answer"
        );
        let stats = on.prefilter_stats();
        assert!(stats.pairs_pruned > 0, "nothing pruned: {stats:?}");
        assert!(
            on.cache_stats().misses < off.cache_stats().misses,
            "prefilter issued no fewer verifier calls: on={} off={}",
            on.cache_stats().misses,
            off.cache_stats().misses
        );
    }

    #[test]
    fn disabling_sketch_tier_reproduces_sketchless_scores_exactly() {
        // `esh query --no-prefilter` must be byte-identical to an engine
        // that never had the tier.
        let f = demo::venom_like();
        let mut with = SimilarityEngine::new(quick_config());
        let mut without = SimilarityEngine::new(EngineConfig {
            sketch: None,
            ..quick_config()
        });
        for (i, (_, p)) in demo::cve_functions().into_iter().enumerate() {
            with.add_target(format!("t{i}"), &gcc().compile_function(&p));
            without.add_target(format!("t{i}"), &gcc().compile_function(&p));
        }
        with.set_prefilter_enabled(false);
        let q = clang().compile_function(&f);
        let a = with.query(&q);
        let b = without.query(&q);
        for (x, y) in a.scores.iter().zip(&b.scores) {
            assert_eq!(x.ges.to_bits(), y.ges.to_bits());
            assert_eq!(x.s_log.to_bits(), y.s_log.to_bits());
            assert_eq!(x.s_vcp.to_bits(), y.s_vcp.to_bits());
        }
        assert_eq!(with.prefilter_stats(), PrefilterStatsSnapshot::default());
    }

    #[test]
    fn refine_window_covering_corpus_reproduces_exhaustive_ranking() {
        // With every target inside the refine window, every target's
        // maxima are exact: the full ranking must equal the exhaustive
        // engine's and S-VCP (H0-free) must be bit-identical. GES itself
        // differs by a per-query H0 constant — dominance-skipped cells
        // keep their pruned zero in the H0 mean — which shifts every
        // target equally and cancels in the order.
        let f = demo::heartbleed_like();
        let mut on = SimilarityEngine::new(quick_config());
        let mut off = SimilarityEngine::new(EngineConfig {
            sketch: None,
            ..quick_config()
        });
        for (name, p) in demo::cve_functions() {
            let p = clang().compile_function(&p);
            on.add_target(name, &p);
            off.add_target(name, &p);
        }
        let q = gcc().compile_function(&f);
        let a = on.query(&q);
        let b = off.query(&q);
        let order = |s: &QueryScores| -> Vec<TargetId> {
            s.ranked().iter().map(|t| t.target).collect()
        };
        assert_eq!(order(&a), order(&b), "served order diverged");
        for (x, y) in a.scores.iter().zip(&b.scores) {
            assert_eq!(x.s_vcp.to_bits(), y.s_vcp.to_bits(), "{}", x.name);
        }
        let stats = on.prefilter_stats();
        assert_eq!(stats.refine_passes, 1, "one query, one refine pass");
    }

    #[test]
    fn wide_ambiguity_window_probes_and_keeps_top_rank() {
        // A window spanning the whole bound range forces every
        // non-candidate pair through the probe path; the refined bounds
        // must still be sound (top-1 matches the exhaustive engine) and
        // every probe must resolve to a prune or an escalation.
        let f = demo::heartbleed_like();
        let probing = PrefilterConfig {
            ambiguity_window: Some(1.0),
            refine_top_k: None,
            ..PrefilterConfig::default()
        };
        let mut on = SimilarityEngine::new(EngineConfig {
            sketch: Some(probing),
            ..quick_config()
        });
        let mut off = SimilarityEngine::new(EngineConfig {
            sketch: None,
            ..quick_config()
        });
        for (name, p) in demo::cve_functions() {
            let p = clang().compile_function(&p);
            on.add_target(name, &p);
            off.add_target(name, &p);
        }
        let q = gcc().compile_function(&f);
        let ranked_on = on.query(&q);
        let ranked_off = off.query(&q);
        assert_eq!(ranked_on.ranked()[0].target, ranked_off.ranked()[0].target);
        let stats = on.prefilter_stats();
        assert!(stats.ambiguous_probes > 0, "window forced no probes");
        assert_eq!(
            stats.pairs_pruned + stats.probe_escalations,
            stats.ambiguous_probes,
            "every probe resolves to a prune or an escalation: {stats:?}"
        );
    }

    #[test]
    fn calibrate_margin_installs_a_grid_margin_and_changes_fingerprint() {
        let mut engine = SimilarityEngine::new(quick_config());
        for (name, p) in demo::cve_functions() {
            engine.add_target(name, &gcc().compile_function(&p));
        }
        let fp0 = engine.config().fingerprint();
        let cal = engine
            .calibrate_margin(40, 0.5)
            .expect("corpus yields samples");
        assert!(cal.sampled_pairs > 0);
        assert!((0.3..=0.9).contains(&cal.margin), "off-grid: {cal:?}");
        assert!(cal.max_pruned_exact <= 0.5, "distortion cap violated");
        let installed = engine.config().active_sketch().unwrap().exact_fallback_margin;
        assert_eq!(installed, cal.margin);
        if (cal.margin - PrefilterConfig::default().exact_fallback_margin).abs() > 1e-9 {
            assert_ne!(engine.config().fingerprint(), fp0);
        }
        // Calibration is a pure function of the corpus: re-running on an
        // identical engine picks the same margin.
        let mut twin = SimilarityEngine::new(quick_config());
        for (name, p) in demo::cve_functions() {
            twin.add_target(name, &gcc().compile_function(&p));
        }
        assert_eq!(twin.calibrate_margin(40, 0.5).unwrap().margin, cal.margin);
    }

    #[test]
    fn strand_classes_deduplicate_across_targets() {
        let f = demo::saturating_sum();
        let p = gcc().compile_function(&f);
        let mut engine = SimilarityEngine::new(quick_config());
        engine.add_target("a", &p);
        let n1 = engine.class_count();
        engine.add_target("b", &p);
        assert_eq!(engine.class_count(), n1, "identical target adds no classes");
        assert_eq!(engine.target_count(), 2);
    }
}
