//! Semantic sketch prefilter: concrete-execution fingerprints + banded
//! LSH in front of the SAT-backed VCP matrix.
//!
//! The verifier tier scales quadratically: every (query strand class ×
//! corpus strand class) pair surviving the §5.5 size filter costs a
//! [`vcp_pair`](crate::vcp_pair) call, and each of those drives the SAT
//! solver. This module prices most pairs with concrete execution instead:
//!
//! 1. **Sketching.** Every strand class is evaluated once on a fixed,
//!    seed-deterministic battery of *uniform* random input vectors (all
//!    inputs of a round share one value — the same trick that makes
//!    [`esh_strands::semantic_signature`] correspondence-invariant, here
//!    over many more rounds and through the solver's concrete evaluator).
//!    Each non-input value folds its whole cross-round trace into one
//!    stable digest; the sorted digest multiset is the class's
//!    [`SemanticSketch`].
//!
//! 2. **Banding.** Digest sets are minhashed and grouped into LSH bands
//!    (a [`SketchIndex`]). Classes sharing a band with a query strand are
//!    *candidates* and go straight to the exact verifier.
//!
//! 3. **Pricing.** For a non-candidate pair the sketch containment bound
//!    is computed (cheap multiset arithmetic). The bound is a true upper
//!    bound on VCP: a verified variable match implies equal values on
//!    every uniform round, hence equal digests. If both directions fall
//!    below [`PrefilterConfig::exact_fallback_margin`] the pair is
//!    dropped to the zero pair without consulting the solver — the same
//!    no-evidence pricing the legacy signature filter applies, chosen
//!    over assigning the bound itself because an upper bound fed through
//!    the sigmoid manufactures false positive evidence for dissimilar
//!    pairs. Otherwise the pair falls back to exact verification
//!    (counted in [`PrefilterStatsSnapshot::exact_fallbacks`]), so
//!    **every pair whose true VCP reaches the margin is still decided
//!    exactly**.
//!
//! Sketches are pure functions of the lifted strand and the sketch
//! parameters, so snapshots persist them (format v3) and `esh index
//! build` amortizes the sketching work across queries.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use esh_ivl::{Proc, Sort};
use esh_solver::eval::{eval_battery, cval_digest, Assignment};
use esh_solver::TermPool;
use esh_strands::{stable_hash64, stable_mix, STABLE_HASH_SEED};
use esh_verifier::encode_proc;
use serde::{Deserialize, Serialize};

/// Tuning for the semantic sketch prefilter tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrefilterConfig {
    /// Master switch. Disabled, the engine behaves exactly like the
    /// pre-sketch pipeline (`esh query --no-prefilter`).
    pub enabled: bool,
    /// Number of concrete input vectors every strand class is evaluated
    /// on. More vectors tighten the containment bound (fewer spurious
    /// exact fallbacks) at linear sketching cost. Default: 8.
    pub vectors: usize,
    /// LSH bands over the minhash signature. Default: 4.
    pub bands: usize,
    /// Minhash rows per band. `bands × rows` hash functions total; more
    /// rows make a band collision demand closer sketches. Default: 4.
    pub rows: usize,
    /// Containment bound at or above which a non-candidate pair is still
    /// verified exactly. Every pair whose true VCP (either direction)
    /// reaches this margin is guaranteed an exact verdict, because the
    /// bound never underestimates VCP. Lower margins prune less (deeper
    /// rank fidelity, more SAT work); higher margins prune more. Default
    /// 0.7; [`SimilarityEngine::calibrate_margin`] picks a per-corpus
    /// value from a held-out sample.
    ///
    /// [`SimilarityEngine::calibrate_margin`]:
    ///     crate::SimilarityEngine::calibrate_margin
    pub exact_fallback_margin: f64,
    /// Half-width of the **ambiguity window** around
    /// `exact_fallback_margin`. A non-candidate pair whose larger
    /// containment bound lands inside `[margin − w, margin + w)` is
    /// *ambiguous*: the base battery cannot confidently separate it from
    /// the margin, so the pair is re-sketched on
    /// [`PrefilterConfig::probe_vectors`] extra concrete vectors before
    /// deciding (the PEM-style "more probes where the evidence is thin").
    /// Wider windows trade extra concrete evaluation for fewer wrong
    /// prune/fallback calls near the margin. `None` disables probing
    /// (the pre-probe decision rule; also what pre-v4 snapshots load as).
    /// Default: `Some(0.2)`.
    pub ambiguity_window: Option<f64>,
    /// Extra eval-battery vectors an ambiguous pair's strands are probed
    /// on (on top of [`PrefilterConfig::vectors`]). More probe vectors
    /// make the refined bound tighter — spurious digest agreements
    /// separate — at linear concrete-evaluation cost per *strand class*
    /// (probe sketches are cached per class, not per pair). `None`
    /// disables probing. Default: `Some(24)`.
    pub probe_vectors: Option<usize>,
    /// Size of the served ranking window that is re-priced through the
    /// full solver path after the pruned ranking (the refine-top-K pass):
    /// every pair behind the top-K targets users actually see is exact,
    /// so the window's internal order equals the exhaustive order.
    /// Larger K buys ranking depth with SAT work proportional to the
    /// window's class count. `None`/`Some(0)` disables refinement.
    /// Default: `Some(10)`.
    pub refine_top_k: Option<usize>,
}

impl Default for PrefilterConfig {
    fn default() -> PrefilterConfig {
        PrefilterConfig {
            enabled: true,
            vectors: 8,
            bands: 4,
            rows: 4,
            exact_fallback_margin: 0.7,
            ambiguity_window: Some(0.2),
            probe_vectors: Some(24),
            refine_top_k: Some(10),
        }
    }
}

impl PrefilterConfig {
    /// Stable FNV-1a digest over every knob. Sketches and pruned-pair
    /// estimates are only valid under the parameters that produced them,
    /// so [`crate::EngineConfig::fingerprint`] folds this in.
    ///
    /// The post-v3 knobs (`ambiguity_window`, `probe_vectors`,
    /// `refine_top_k`) are mixed **only when present**, so a config
    /// loaded from a pre-v4 snapshot (where they deserialize as `None`)
    /// keeps the fingerprint it was recorded with.
    pub fn fingerprint(&self) -> u64 {
        let mut fields = vec![
            u64::from(self.enabled),
            self.vectors as u64,
            self.bands as u64,
            self.rows as u64,
            self.exact_fallback_margin.to_bits(),
        ];
        if let Some(w) = self.ambiguity_window {
            fields.push(0xa3b1);
            fields.push(w.to_bits());
        }
        if let Some(p) = self.probe_vectors {
            fields.push(0xa3b2);
            fields.push(p as u64);
        }
        if let Some(k) = self.refine_top_k {
            fields.push(0xa3b3);
            fields.push(k as u64);
        }
        stable_hash64(fields)
    }

    /// Effective ambiguity-window half-width: 0.0 (probing off) unless
    /// both `ambiguity_window` and `probe_vectors` are configured.
    pub fn probe_window(&self) -> f64 {
        match (self.ambiguity_window, self.probe_vectors) {
            (Some(w), Some(p)) if w > 0.0 && p > 0 => w,
            _ => 0.0,
        }
    }

    /// Effective extra probe-vector count (0 = probing off).
    pub fn effective_probe_vectors(&self) -> usize {
        if self.probe_window() > 0.0 {
            self.probe_vectors.unwrap_or(0)
        } else {
            0
        }
    }

    /// Effective refine window size (0 = refinement off).
    pub fn effective_refine_top_k(&self) -> usize {
        self.refine_top_k.unwrap_or(0)
    }

    /// The pure-LSH profile the 100k scale tier indexes under: only pairs
    /// that collide on an LSH band are verified exactly; every
    /// non-candidate pair is pruned outright, however high its
    /// containment bound (the margin sits above any reachable bound, and
    /// probing is off). Recall rests entirely on the banded minhash —
    /// the classic sub-linear trade — which is also what makes
    /// whole-shard band pruning effective: a shard none of whose classes
    /// shares a band with the query provably contributes nothing, so the
    /// fan-out skips it without loading it (see `ShardBandSummary`).
    /// The refine-top-K pass stays on to re-price the served window
    /// exactly.
    pub fn lsh_only() -> PrefilterConfig {
        PrefilterConfig {
            // Containment bounds never exceed 1.0, so no non-candidate
            // pair can reach this margin: bounds-based exact fallbacks
            // and probing are off, band collisions alone escalate.
            exact_fallback_margin: 2.0,
            ambiguity_window: None,
            probe_vectors: None,
            ..PrefilterConfig::default()
        }
    }
}

/// What the sketch tier decided for a non-candidate pair from its base
/// containment bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SketchDecision {
    /// Both bounds confidently below the margin: price the pair as the
    /// zero pair without any solver work.
    Prune,
    /// The larger bound lands inside the ambiguity window around the
    /// margin: re-sketch both strands on extra probe vectors and re-apply
    /// the margin to the refined bounds.
    Probe,
    /// A bound confidently reaches the margin: verify exactly.
    Exact,
}

/// The decision rule over one pair's containment bounds.
///
/// With `window == 0.0` this is the pre-probe rule: prune iff both
/// bounds fall below `margin`. With a positive window, bounds whose
/// maximum lands inside `[margin − window, margin + window)` return
/// [`SketchDecision::Probe`] instead of being decided on base evidence.
/// Soundness is unaffected: probing re-applies the margin to refined
/// bounds which are themselves upper bounds on the exact VCP, so a pair
/// whose true VCP reaches the margin can never end up pruned.
pub fn bounds_decision(c_q: f64, c_t: f64, margin: f64, window: f64) -> SketchDecision {
    let hi = c_q.max(c_t);
    if hi >= margin + window {
        SketchDecision::Exact
    } else if hi < margin - window {
        SketchDecision::Prune
    } else if window > 0.0 {
        SketchDecision::Probe
    } else if hi < margin {
        SketchDecision::Prune
    } else {
        SketchDecision::Exact
    }
}

/// Domain-separation tag for the minhash family (keeps minhash values
/// from colliding with digest or band-key derivations).
const TAG_MINHASH: u64 = 0x6d69_6e68_6173_6831;

/// Seed of the sketch input battery. Fixed so sketches are reproducible
/// across processes and toolchains.
const SKETCH_SEED: u64 = 0x0e5b_5eed_f19e_0901;

/// A per-strand-class semantic sketch: one stable digest per non-input
/// value (its entire trace across the input battery), plus the minhash
/// signature the LSH index bands.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SemanticSketch {
    /// Sorted digests, one per non-input variable. Two digests are equal
    /// exactly when the values agreed (width included) on every round.
    pub digests: Vec<u64>,
    /// Minhash signature (`bands × rows` entries).
    pub minhash: Vec<u64>,
}

impl SemanticSketch {
    /// Upper bound on `VCP(self, other)`: the fraction of `self`'s values
    /// whose digest occurs in `other` (0.0 for an empty sketch).
    ///
    /// Soundness: a verified match `q_i ≡ t_j` under any type-respecting
    /// correspondence γ implies equal concrete values on every uniform
    /// round (matched inputs share a sort, so they receive identical
    /// masked values), hence equal digests — so every exactly-matchable
    /// value is counted here, and the bound never underestimates VCP.
    pub fn containment_in(&self, other: &SemanticSketch) -> f64 {
        if self.digests.is_empty() {
            return 0.0;
        }
        // Both sides sorted; count self entries (with multiplicity —
        // matching is not injective) present anywhere in `other`.
        let mut matched = 0usize;
        let mut j = 0usize;
        for &d in &self.digests {
            while j < other.digests.len() && other.digests[j] < d {
                j += 1;
            }
            if j < other.digests.len() && other.digests[j] == d {
                matched += 1;
            }
        }
        matched as f64 / self.digests.len() as f64
    }

    /// The LSH band keys of this sketch under the given banding shape.
    pub fn band_keys(&self, bands: usize, rows: usize) -> Vec<u64> {
        (0..bands)
            .map(|b| {
                let mut h = stable_mix(STABLE_HASH_SEED, b as u64 + 1);
                for r in 0..rows {
                    let v = self.minhash.get(b * rows + r).copied().unwrap_or(u64::MAX);
                    h = stable_mix(h, v);
                }
                h
            })
            .collect()
    }
}

/// Computes the semantic sketch of a lifted strand.
///
/// The strand is encoded into a throwaway term pool and its non-input
/// values are evaluated on `config.vectors` uniform assignments (all
/// bitvector inputs of a round share one pseudo-random value, all memory
/// inputs one base image — the correspondence-invariance requirement).
pub fn compute_sketch(proc_: &Proc, config: &PrefilterConfig) -> SemanticSketch {
    compute_sketch_rounds(proc_, config, config.vectors)
}

/// Computes the **probe** sketch of a lifted strand: the same
/// construction as [`compute_sketch`] over the base battery *extended*
/// by [`PrefilterConfig::effective_probe_vectors`] extra rounds.
///
/// More rounds make each per-temp digest fold more evidence, so two
/// temps that agreed on the base battery by coincidence separate, while
/// genuinely matchable temps (equal under some correspondence on every
/// uniform round) still collide. The resulting containment bound is
/// therefore still a true upper bound on the exact VCP — the property
/// the ambiguity-window decision relies on.
pub fn compute_probe_sketch(proc_: &Proc, config: &PrefilterConfig) -> SemanticSketch {
    compute_sketch_rounds(
        proc_,
        config,
        config.vectors + config.effective_probe_vectors(),
    )
}

fn compute_sketch_rounds(proc_: &Proc, config: &PrefilterConfig, vectors: usize) -> SemanticSketch {
    let mut pool = TermPool::new();
    let mut next_id = 0u32;
    let mut ids = HashMap::new();
    let terms = encode_proc(&mut pool, proc_, |v| {
        *ids.entry(v).or_insert_with(|| {
            let id = next_id;
            next_id += 1;
            id
        })
    });
    let temps = proc_.temps();
    let temp_terms: Vec<_> = temps.iter().map(|v| terms[v.index()]).collect();

    let rounds: Vec<Assignment> = (0..vectors as u64)
        .map(|round| {
            let mut a = Assignment::random(round);
            let bv = stable_hash64([SKETCH_SEED, round, 1]);
            let mem = stable_hash64([SKETCH_SEED, round, 2]);
            for (v, id) in &ids {
                match proc_.var(*v).sort {
                    Sort::Bv(_) => {
                        a.vars.insert(*id, bv);
                    }
                    Sort::Mem => {
                        a.mems.insert(*id, mem);
                    }
                }
            }
            a
        })
        .collect();
    let grid = eval_battery(&pool, &temp_terms, &rounds);

    let mut digests: Vec<u64> = temps
        .iter()
        .enumerate()
        .map(|(k, v)| {
            let width = match proc_.var(*v).sort {
                Sort::Bv(w) => u64::from(w),
                Sort::Mem => 0,
            };
            let mut h = stable_mix(STABLE_HASH_SEED, width);
            for row in &grid {
                h = stable_mix(h, cval_digest(&row[k]));
            }
            h
        })
        .collect();
    digests.sort_unstable();

    let k = config.bands * config.rows;
    let minhash = (0..k as u64)
        .map(|i| {
            digests
                .iter()
                .map(|&d| stable_hash64([TAG_MINHASH, i, d]))
                .min()
                .unwrap_or(u64::MAX)
        })
        .collect();
    SemanticSketch { digests, minhash }
}

/// The banded LSH index over every corpus strand class's sketch.
///
/// Built lazily on the first prefilter-enabled query (so v2 snapshots
/// without persisted sketches just rebuild them) and invalidated whenever
/// a target is added.
#[derive(Debug)]
pub struct SketchIndex {
    bands: usize,
    rows: usize,
    sketches: Vec<SemanticSketch>,
    buckets: HashMap<u64, Vec<usize>>,
}

impl SketchIndex {
    /// Builds the index over per-class sketches.
    pub fn build(sketches: Vec<SemanticSketch>, config: &PrefilterConfig) -> SketchIndex {
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, s) in sketches.iter().enumerate() {
            for key in s.band_keys(config.bands, config.rows) {
                buckets.entry(key).or_default().push(i);
            }
        }
        SketchIndex {
            bands: config.bands,
            rows: config.rows,
            sketches,
            buckets,
        }
    }

    /// Number of indexed classes.
    pub fn len(&self) -> usize {
        self.sketches.len()
    }

    /// True when no classes are indexed.
    pub fn is_empty(&self) -> bool {
        self.sketches.is_empty()
    }

    /// The sketch of class `i`.
    pub fn sketch(&self, i: usize) -> &SemanticSketch {
        &self.sketches[i]
    }

    /// Candidate mask for a query sketch: `mask[i]` is true when class
    /// `i` shares at least one LSH band with the query — those pairs go
    /// straight to the exact verifier.
    pub fn candidates(&self, query: &SemanticSketch) -> Vec<bool> {
        let mut mask = vec![false; self.sketches.len()];
        for key in query.band_keys(self.bands, self.rows) {
            if let Some(bucket) = self.buckets.get(&key) {
                for &i in bucket {
                    mask[i] = true;
                }
            }
        }
        mask
    }
}

/// Engine-lifetime prefilter counters (atomic; workers record, scrapes
/// read).
#[derive(Debug, Default)]
pub struct PrefilterStats {
    pairs_pruned: AtomicU64,
    sketch_collisions: AtomicU64,
    exact_fallbacks: AtomicU64,
    ambiguous_probes: AtomicU64,
    probe_escalations: AtomicU64,
    refined_pairs: AtomicU64,
    refine_passes: AtomicU64,
}

impl PrefilterStats {
    /// Counts one pair priced by its sketch bound (solver skipped).
    pub fn record_pruned(&self) {
        self.pairs_pruned.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one pair retrieved as an LSH candidate (band collision).
    pub fn record_collision(&self) {
        self.sketch_collisions.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one non-candidate pair whose bound reached the margin and
    /// was verified exactly anyway.
    pub fn record_fallback(&self) {
        self.exact_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one pair whose base bounds landed in the ambiguity window
    /// and was re-sketched on extra probe vectors.
    pub fn record_probe(&self) {
        self.ambiguous_probes.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one probed pair whose refined bounds still reached the
    /// margin and escalated to exact verification.
    pub fn record_probe_escalation(&self) {
        self.probe_escalations.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts `n` sketch-pruned pairs re-verified by a refine-top-K pass.
    pub fn record_refined_pairs(&self, n: u64) {
        self.refined_pairs.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts one query that ran a refine-top-K pass.
    pub fn record_refine_pass(&self) {
        self.refine_passes.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> PrefilterStatsSnapshot {
        PrefilterStatsSnapshot {
            pairs_pruned: self.pairs_pruned.load(Ordering::Relaxed),
            sketch_collisions: self.sketch_collisions.load(Ordering::Relaxed),
            exact_fallbacks: self.exact_fallbacks.load(Ordering::Relaxed),
            ambiguous_probes: self.ambiguous_probes.load(Ordering::Relaxed),
            probe_escalations: self.probe_escalations.load(Ordering::Relaxed),
            refined_pairs: self.refined_pairs.load(Ordering::Relaxed),
            refine_passes: self.refine_passes.load(Ordering::Relaxed),
        }
    }
}

/// Plain copy of the prefilter counters at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrefilterStatsSnapshot {
    /// Pairs whose VCP was estimated from sketches — no solver call.
    pub pairs_pruned: u64,
    /// Pairs retrieved as LSH candidates (shared at least one band).
    pub sketch_collisions: u64,
    /// Non-candidate pairs whose containment bound reached the margin and
    /// fell back to exact verification (probe escalations included).
    pub exact_fallbacks: u64,
    /// Pairs whose base bounds landed inside the ambiguity window and
    /// were re-sketched on extra probe vectors before deciding.
    pub ambiguous_probes: u64,
    /// Probed pairs whose refined bounds still reached the margin and
    /// escalated to exact verification (the rest of the probes pruned).
    pub probe_escalations: u64,
    /// Sketch-pruned pairs the refine-top-K pass re-priced through the
    /// verifier (cache-known and dominance-skipped cells excluded — see
    /// the refine pass in `SimilarityEngine`).
    pub refined_pairs: u64,
    /// Queries that ran a refine-top-K pass over their served window.
    pub refine_passes: u64,
}

/// One held-out observation for margin calibration: the larger of a
/// pair's two sketch containment bounds against the larger of its two
/// exact VCP directions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarginSample {
    /// `max(containment(q→t), containment(t→q))` from the base sketches.
    pub bound: f64,
    /// `max(VCP(q,t), VCP(t,q))` from the exact verifier.
    pub exact: f64,
}

/// Result of calibrating `exact_fallback_margin` against a held-out
/// sample (see [`calibrated_margin`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarginCalibration {
    /// The chosen margin.
    pub margin: f64,
    /// Sampled pairs the choice was driven by.
    pub sampled_pairs: usize,
    /// Fraction of the sample the chosen margin would prune.
    pub pruned_fraction: f64,
    /// Largest exact VCP among sampled pairs the chosen margin prunes
    /// (the calibration's realized score-distortion bound).
    pub max_pruned_exact: f64,
}

/// Margin grid the calibration searches (ascending).
const MARGIN_GRID: [f64; 13] = [
    0.30, 0.35, 0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90,
];

/// Picks the largest margin on a fixed grid such that **no sampled pair
/// the margin would prune has exact VCP above `max_pruned_vcp`**.
///
/// The containment bound already guarantees pruned pairs have exact VCP
/// below the margin; calibration tightens that to a per-corpus bound on
/// the VCP evidence pruning may discard. `max_pruned_vcp` is the knob:
/// at most this much true VCP may be zeroed per pruned pair. Sub-sigmoid
/// values (≤ 0.5, where `likelihood` contributes almost nothing) keep
/// pruned pairs out of the scoring's sensitive region entirely.
///
/// With an empty sample the grid's most conservative margin is returned.
pub fn calibrated_margin(samples: &[MarginSample], max_pruned_vcp: f64) -> MarginCalibration {
    let mut best = MARGIN_GRID[0];
    if samples.is_empty() {
        // No evidence: every grid point is vacuously "safe"; stay at the
        // grid's most conservative margin instead of its largest.
        return MarginCalibration {
            margin: best,
            sampled_pairs: 0,
            pruned_fraction: 0.0,
            max_pruned_exact: 0.0,
        };
    }
    for &m in &MARGIN_GRID {
        let safe = samples
            .iter()
            .filter(|s| s.bound < m)
            .all(|s| s.exact <= max_pruned_vcp);
        if safe {
            best = m;
        }
    }
    let pruned: Vec<&MarginSample> = samples.iter().filter(|s| s.bound < best).collect();
    MarginCalibration {
        margin: best,
        sampled_pairs: samples.len(),
        pruned_fraction: pruned.len() as f64 / samples.len().max(1) as f64,
        max_pruned_exact: pruned.iter().map(|s| s.exact).fold(0.0, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esh_ivl::lift;

    fn lift_text(text: &str) -> Proc {
        let p = esh_asm::parse_proc(&format!("proc t\nentry:\n{text}")).expect("parses");
        lift("t", &p.blocks[0].insts)
    }

    #[test]
    fn sketch_is_deterministic_and_register_rename_invariant() {
        let a = lift_text("mov r13, rbx\nlea rcx, [r13+0x3]\nshr rcx, 0x2");
        let b = lift_text("mov r12, rbx\nlea rdi, [r12+0x3]\nshr rdi, 0x2");
        let cfg = PrefilterConfig::default();
        assert_eq!(compute_sketch(&a, &cfg), compute_sketch(&a, &cfg));
        assert_eq!(compute_sketch(&a, &cfg), compute_sketch(&b, &cfg));
    }

    #[test]
    fn equivalent_strands_have_full_containment() {
        // Figure 3's pair: the query's every value exists in the target.
        let q = lift_text("lea r14d, [r12+0x13]\nmov rsi, 0x18\nlea rax, [rsi+r14]");
        let t = lift_text(
            "mov r9, 0x13\nmov rbx, r12\nlea r13d, [rbx+r9]\nadd r9, 0x5\nmov rsi, r9\n\
             lea rax, [rsi+r13]",
        );
        let cfg = PrefilterConfig::default();
        let sq = compute_sketch(&q, &cfg);
        let st = compute_sketch(&t, &cfg);
        assert_eq!(sq.containment_in(&st), 1.0);
        assert!(st.containment_in(&sq) < 1.0, "t computes extra values");
    }

    #[test]
    fn unrelated_strands_have_low_containment_and_no_band_collision() {
        let q = lift_text("mov rax, rdi\nimul rax, rsi\nxor rax, 0x1234");
        let t = lift_text("mov rbx, rdi\nshr rbx, 0x7\nor rbx, 0x8000");
        let cfg = PrefilterConfig::default();
        let sq = compute_sketch(&q, &cfg);
        let st = compute_sketch(&t, &cfg);
        assert!(sq.containment_in(&st) < 0.5);
        let index = SketchIndex::build(vec![st], &cfg);
        assert!(!index.candidates(&sq)[0], "no band should collide");
    }

    #[test]
    fn identical_sketches_always_collide_in_every_band() {
        let s = compute_sketch(
            &lift_text("mov rax, rdi\nadd rax, 0x5\nimul rax, rax"),
            &PrefilterConfig::default(),
        );
        let cfg = PrefilterConfig::default();
        let index = SketchIndex::build(vec![s.clone()], &cfg);
        assert!(index.candidates(&s)[0]);
        assert_eq!(s.band_keys(cfg.bands, cfg.rows).len(), cfg.bands);
    }

    #[test]
    fn stats_counters_accumulate() {
        let stats = PrefilterStats::default();
        stats.record_pruned();
        stats.record_pruned();
        stats.record_collision();
        stats.record_fallback();
        stats.record_probe();
        stats.record_probe();
        stats.record_probe_escalation();
        stats.record_refined_pairs(5);
        stats.record_refine_pass();
        let s = stats.snapshot();
        assert_eq!(s.pairs_pruned, 2);
        assert_eq!(s.sketch_collisions, 1);
        assert_eq!(s.exact_fallbacks, 1);
        assert_eq!(s.ambiguous_probes, 2);
        assert_eq!(s.probe_escalations, 1);
        assert_eq!(s.refined_pairs, 5);
        assert_eq!(s.refine_passes, 1);
    }

    #[test]
    fn fingerprint_tracks_every_knob() {
        let base = PrefilterConfig::default();
        let mut seen = std::collections::HashSet::new();
        seen.insert(base.fingerprint());
        for cfg in [
            PrefilterConfig { enabled: false, ..base },
            PrefilterConfig { vectors: 16, ..base },
            PrefilterConfig { bands: 8, ..base },
            PrefilterConfig { rows: 3, ..base },
            PrefilterConfig { exact_fallback_margin: 0.5, ..base },
            PrefilterConfig { ambiguity_window: Some(0.3), ..base },
            PrefilterConfig { ambiguity_window: None, ..base },
            PrefilterConfig { probe_vectors: Some(48), ..base },
            PrefilterConfig { probe_vectors: None, ..base },
            PrefilterConfig { refine_top_k: Some(5), ..base },
            PrefilterConfig { refine_top_k: None, ..base },
        ] {
            assert!(seen.insert(cfg.fingerprint()), "collision for {cfg:?}");
        }
    }

    #[test]
    fn probe_sketch_keeps_rename_invariance_and_folds_extra_rounds() {
        // Probing extends the battery: rename-equivalent strands still
        // produce identical probe sketches (full containment both ways),
        // while each digest now folds more rounds than the base sketch.
        let a = lift_text("mov r13, rbx\nlea rcx, [r13+0x3]\nshr rcx, 0x2");
        let b = lift_text("mov r12, rbx\nlea rdi, [r12+0x3]\nshr rdi, 0x2");
        let cfg = PrefilterConfig::default();
        let pa = compute_probe_sketch(&a, &cfg);
        let pb = compute_probe_sketch(&b, &cfg);
        assert_eq!(pa, pb);
        assert_eq!(pa.containment_in(&pb), 1.0);
        let base = compute_sketch(&a, &cfg);
        assert_eq!(base.digests.len(), pa.digests.len(), "digests are per value");
        assert_ne!(base.digests, pa.digests, "probe rounds fold into digests");
    }

    #[test]
    fn bounds_decision_partitions_around_the_margin() {
        let m = 0.6;
        let w = 0.1;
        // Clearly below the window: prune without probing.
        assert_eq!(bounds_decision(0.2, 0.3, m, w), SketchDecision::Prune);
        // Clearly above the window: exact, no probe needed.
        assert_eq!(bounds_decision(0.1, 0.8, m, w), SketchDecision::Exact);
        // Inside [margin - w, margin + w): ambiguous, probe.
        assert_eq!(bounds_decision(0.55, 0.1, m, w), SketchDecision::Probe);
        assert_eq!(bounds_decision(0.1, 0.65, m, w), SketchDecision::Probe);
        // The decision keys off the larger bound.
        assert_eq!(bounds_decision(0.65, 0.75, m, w), SketchDecision::Exact);
        // Zero window reduces to the legacy two-way margin rule.
        assert_eq!(bounds_decision(0.59, 0.0, m, 0.0), SketchDecision::Prune);
        assert_eq!(bounds_decision(0.61, 0.0, m, 0.0), SketchDecision::Exact);
    }

    #[test]
    fn bounds_decision_never_prunes_at_or_above_margin() {
        // Soundness invariant of the window rule: any pair whose larger
        // bound reaches the margin is probed or verified, never pruned.
        for m in [0.3, 0.6, 0.9] {
            for w in [0.0, 0.05, 0.2] {
                let mut hi = m;
                while hi <= 1.0 + 1e-9 {
                    let d = bounds_decision(hi, 0.0, m, w);
                    assert_ne!(d, SketchDecision::Prune, "pruned hi={hi} m={m} w={w}");
                    hi += 0.01;
                }
            }
        }
    }

    #[test]
    fn calibrated_margin_picks_largest_safe_grid_point() {
        // Bounds dominate exacts (as containment guarantees). A margin of
        // 0.7 would prune the (0.65, 0.6) sample whose exact exceeds the
        // 0.5 distortion cap, so calibration must stop at 0.65.
        let samples = [
            MarginSample { bound: 0.2, exact: 0.1 },
            MarginSample { bound: 0.5, exact: 0.4 },
            MarginSample { bound: 0.65, exact: 0.6 },
            MarginSample { bound: 0.9, exact: 0.85 },
        ];
        let cal = calibrated_margin(&samples, 0.5);
        assert_eq!(cal.margin, 0.65);
        assert_eq!(cal.sampled_pairs, 4);
        assert_eq!(cal.pruned_fraction, 0.5);
        assert_eq!(cal.max_pruned_exact, 0.4);
    }

    #[test]
    fn calibrated_margin_on_empty_sample_is_most_conservative() {
        let cal = calibrated_margin(&[], 0.5);
        assert_eq!(cal.margin, MARGIN_GRID[0]);
        assert_eq!(cal.sampled_pairs, 0);
        assert_eq!(cal.pruned_fraction, 0.0);
    }
}
