//! Semantic sketch prefilter: concrete-execution fingerprints + banded
//! LSH in front of the SAT-backed VCP matrix.
//!
//! The verifier tier scales quadratically: every (query strand class ×
//! corpus strand class) pair surviving the §5.5 size filter costs a
//! [`vcp_pair`](crate::vcp_pair) call, and each of those drives the SAT
//! solver. This module prices most pairs with concrete execution instead:
//!
//! 1. **Sketching.** Every strand class is evaluated once on a fixed,
//!    seed-deterministic battery of *uniform* random input vectors (all
//!    inputs of a round share one value — the same trick that makes
//!    [`esh_strands::semantic_signature`] correspondence-invariant, here
//!    over many more rounds and through the solver's concrete evaluator).
//!    Each non-input value folds its whole cross-round trace into one
//!    stable digest; the sorted digest multiset is the class's
//!    [`SemanticSketch`].
//!
//! 2. **Banding.** Digest sets are minhashed and grouped into LSH bands
//!    (a [`SketchIndex`]). Classes sharing a band with a query strand are
//!    *candidates* and go straight to the exact verifier.
//!
//! 3. **Pricing.** For a non-candidate pair the sketch containment bound
//!    is computed (cheap multiset arithmetic). The bound is a true upper
//!    bound on VCP: a verified variable match implies equal values on
//!    every uniform round, hence equal digests. If both directions fall
//!    below [`PrefilterConfig::exact_fallback_margin`] the pair is
//!    dropped to the zero pair without consulting the solver — the same
//!    no-evidence pricing the legacy signature filter applies, chosen
//!    over assigning the bound itself because an upper bound fed through
//!    the sigmoid manufactures false positive evidence for dissimilar
//!    pairs. Otherwise the pair falls back to exact verification
//!    (counted in [`PrefilterStatsSnapshot::exact_fallbacks`]), so
//!    **every pair whose true VCP reaches the margin is still decided
//!    exactly**.
//!
//! Sketches are pure functions of the lifted strand and the sketch
//! parameters, so snapshots persist them (format v3) and `esh index
//! build` amortizes the sketching work across queries.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use esh_ivl::{Proc, Sort};
use esh_solver::eval::{eval_battery, cval_digest, Assignment};
use esh_solver::TermPool;
use esh_strands::{stable_hash64, stable_mix, STABLE_HASH_SEED};
use esh_verifier::encode_proc;
use serde::{Deserialize, Serialize};

/// Tuning for the semantic sketch prefilter tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrefilterConfig {
    /// Master switch. Disabled, the engine behaves exactly like the
    /// pre-sketch pipeline (`esh query --no-prefilter`).
    pub enabled: bool,
    /// Number of concrete input vectors every strand class is evaluated
    /// on. More vectors tighten the containment bound (fewer spurious
    /// exact fallbacks) at linear sketching cost.
    pub vectors: usize,
    /// LSH bands over the minhash signature.
    pub bands: usize,
    /// Minhash rows per band. `bands × rows` hash functions total; more
    /// rows make a band collision demand closer sketches.
    pub rows: usize,
    /// Containment bound at or above which a non-candidate pair is still
    /// verified exactly. Every pair whose true VCP (either direction)
    /// reaches this margin is guaranteed an exact verdict, because the
    /// bound never underestimates VCP.
    pub exact_fallback_margin: f64,
}

impl Default for PrefilterConfig {
    fn default() -> PrefilterConfig {
        PrefilterConfig {
            enabled: true,
            vectors: 8,
            bands: 4,
            rows: 4,
            exact_fallback_margin: 0.7,
        }
    }
}

impl PrefilterConfig {
    /// Stable FNV-1a digest over every knob. Sketches and pruned-pair
    /// estimates are only valid under the parameters that produced them,
    /// so [`crate::EngineConfig::fingerprint`] folds this in.
    pub fn fingerprint(&self) -> u64 {
        stable_hash64([
            u64::from(self.enabled),
            self.vectors as u64,
            self.bands as u64,
            self.rows as u64,
            self.exact_fallback_margin.to_bits(),
        ])
    }
}

/// Domain-separation tag for the minhash family (keeps minhash values
/// from colliding with digest or band-key derivations).
const TAG_MINHASH: u64 = 0x6d69_6e68_6173_6831;

/// Seed of the sketch input battery. Fixed so sketches are reproducible
/// across processes and toolchains.
const SKETCH_SEED: u64 = 0x0e5b_5eed_f19e_0901;

/// A per-strand-class semantic sketch: one stable digest per non-input
/// value (its entire trace across the input battery), plus the minhash
/// signature the LSH index bands.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SemanticSketch {
    /// Sorted digests, one per non-input variable. Two digests are equal
    /// exactly when the values agreed (width included) on every round.
    pub digests: Vec<u64>,
    /// Minhash signature (`bands × rows` entries).
    pub minhash: Vec<u64>,
}

impl SemanticSketch {
    /// Upper bound on `VCP(self, other)`: the fraction of `self`'s values
    /// whose digest occurs in `other` (0.0 for an empty sketch).
    ///
    /// Soundness: a verified match `q_i ≡ t_j` under any type-respecting
    /// correspondence γ implies equal concrete values on every uniform
    /// round (matched inputs share a sort, so they receive identical
    /// masked values), hence equal digests — so every exactly-matchable
    /// value is counted here, and the bound never underestimates VCP.
    pub fn containment_in(&self, other: &SemanticSketch) -> f64 {
        if self.digests.is_empty() {
            return 0.0;
        }
        // Both sides sorted; count self entries (with multiplicity —
        // matching is not injective) present anywhere in `other`.
        let mut matched = 0usize;
        let mut j = 0usize;
        for &d in &self.digests {
            while j < other.digests.len() && other.digests[j] < d {
                j += 1;
            }
            if j < other.digests.len() && other.digests[j] == d {
                matched += 1;
            }
        }
        matched as f64 / self.digests.len() as f64
    }

    /// The LSH band keys of this sketch under the given banding shape.
    pub fn band_keys(&self, bands: usize, rows: usize) -> Vec<u64> {
        (0..bands)
            .map(|b| {
                let mut h = stable_mix(STABLE_HASH_SEED, b as u64 + 1);
                for r in 0..rows {
                    let v = self.minhash.get(b * rows + r).copied().unwrap_or(u64::MAX);
                    h = stable_mix(h, v);
                }
                h
            })
            .collect()
    }
}

/// Computes the semantic sketch of a lifted strand.
///
/// The strand is encoded into a throwaway term pool and its non-input
/// values are evaluated on `config.vectors` uniform assignments (all
/// bitvector inputs of a round share one pseudo-random value, all memory
/// inputs one base image — the correspondence-invariance requirement).
pub fn compute_sketch(proc_: &Proc, config: &PrefilterConfig) -> SemanticSketch {
    let mut pool = TermPool::new();
    let mut next_id = 0u32;
    let mut ids = HashMap::new();
    let terms = encode_proc(&mut pool, proc_, |v| {
        *ids.entry(v).or_insert_with(|| {
            let id = next_id;
            next_id += 1;
            id
        })
    });
    let temps = proc_.temps();
    let temp_terms: Vec<_> = temps.iter().map(|v| terms[v.index()]).collect();

    let rounds: Vec<Assignment> = (0..config.vectors as u64)
        .map(|round| {
            let mut a = Assignment::random(round);
            let bv = stable_hash64([SKETCH_SEED, round, 1]);
            let mem = stable_hash64([SKETCH_SEED, round, 2]);
            for (v, id) in &ids {
                match proc_.var(*v).sort {
                    Sort::Bv(_) => {
                        a.vars.insert(*id, bv);
                    }
                    Sort::Mem => {
                        a.mems.insert(*id, mem);
                    }
                }
            }
            a
        })
        .collect();
    let grid = eval_battery(&pool, &temp_terms, &rounds);

    let mut digests: Vec<u64> = temps
        .iter()
        .enumerate()
        .map(|(k, v)| {
            let width = match proc_.var(*v).sort {
                Sort::Bv(w) => u64::from(w),
                Sort::Mem => 0,
            };
            let mut h = stable_mix(STABLE_HASH_SEED, width);
            for row in &grid {
                h = stable_mix(h, cval_digest(&row[k]));
            }
            h
        })
        .collect();
    digests.sort_unstable();

    let k = config.bands * config.rows;
    let minhash = (0..k as u64)
        .map(|i| {
            digests
                .iter()
                .map(|&d| stable_hash64([TAG_MINHASH, i, d]))
                .min()
                .unwrap_or(u64::MAX)
        })
        .collect();
    SemanticSketch { digests, minhash }
}

/// The banded LSH index over every corpus strand class's sketch.
///
/// Built lazily on the first prefilter-enabled query (so v2 snapshots
/// without persisted sketches just rebuild them) and invalidated whenever
/// a target is added.
#[derive(Debug)]
pub struct SketchIndex {
    bands: usize,
    rows: usize,
    sketches: Vec<SemanticSketch>,
    buckets: HashMap<u64, Vec<usize>>,
}

impl SketchIndex {
    /// Builds the index over per-class sketches.
    pub fn build(sketches: Vec<SemanticSketch>, config: &PrefilterConfig) -> SketchIndex {
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, s) in sketches.iter().enumerate() {
            for key in s.band_keys(config.bands, config.rows) {
                buckets.entry(key).or_default().push(i);
            }
        }
        SketchIndex {
            bands: config.bands,
            rows: config.rows,
            sketches,
            buckets,
        }
    }

    /// Number of indexed classes.
    pub fn len(&self) -> usize {
        self.sketches.len()
    }

    /// True when no classes are indexed.
    pub fn is_empty(&self) -> bool {
        self.sketches.is_empty()
    }

    /// The sketch of class `i`.
    pub fn sketch(&self, i: usize) -> &SemanticSketch {
        &self.sketches[i]
    }

    /// Candidate mask for a query sketch: `mask[i]` is true when class
    /// `i` shares at least one LSH band with the query — those pairs go
    /// straight to the exact verifier.
    pub fn candidates(&self, query: &SemanticSketch) -> Vec<bool> {
        let mut mask = vec![false; self.sketches.len()];
        for key in query.band_keys(self.bands, self.rows) {
            if let Some(bucket) = self.buckets.get(&key) {
                for &i in bucket {
                    mask[i] = true;
                }
            }
        }
        mask
    }
}

/// Engine-lifetime prefilter counters (atomic; workers record, scrapes
/// read).
#[derive(Debug, Default)]
pub struct PrefilterStats {
    pairs_pruned: AtomicU64,
    sketch_collisions: AtomicU64,
    exact_fallbacks: AtomicU64,
}

impl PrefilterStats {
    /// Counts one pair priced by its sketch bound (solver skipped).
    pub fn record_pruned(&self) {
        self.pairs_pruned.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one pair retrieved as an LSH candidate (band collision).
    pub fn record_collision(&self) {
        self.sketch_collisions.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one non-candidate pair whose bound reached the margin and
    /// was verified exactly anyway.
    pub fn record_fallback(&self) {
        self.exact_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> PrefilterStatsSnapshot {
        PrefilterStatsSnapshot {
            pairs_pruned: self.pairs_pruned.load(Ordering::Relaxed),
            sketch_collisions: self.sketch_collisions.load(Ordering::Relaxed),
            exact_fallbacks: self.exact_fallbacks.load(Ordering::Relaxed),
        }
    }
}

/// Plain copy of the prefilter counters at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrefilterStatsSnapshot {
    /// Pairs whose VCP was estimated from sketches — no solver call.
    pub pairs_pruned: u64,
    /// Pairs retrieved as LSH candidates (shared at least one band).
    pub sketch_collisions: u64,
    /// Non-candidate pairs whose containment bound reached the margin and
    /// fell back to exact verification.
    pub exact_fallbacks: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use esh_ivl::lift;

    fn lift_text(text: &str) -> Proc {
        let p = esh_asm::parse_proc(&format!("proc t\nentry:\n{text}")).expect("parses");
        lift("t", &p.blocks[0].insts)
    }

    #[test]
    fn sketch_is_deterministic_and_register_rename_invariant() {
        let a = lift_text("mov r13, rbx\nlea rcx, [r13+0x3]\nshr rcx, 0x2");
        let b = lift_text("mov r12, rbx\nlea rdi, [r12+0x3]\nshr rdi, 0x2");
        let cfg = PrefilterConfig::default();
        assert_eq!(compute_sketch(&a, &cfg), compute_sketch(&a, &cfg));
        assert_eq!(compute_sketch(&a, &cfg), compute_sketch(&b, &cfg));
    }

    #[test]
    fn equivalent_strands_have_full_containment() {
        // Figure 3's pair: the query's every value exists in the target.
        let q = lift_text("lea r14d, [r12+0x13]\nmov rsi, 0x18\nlea rax, [rsi+r14]");
        let t = lift_text(
            "mov r9, 0x13\nmov rbx, r12\nlea r13d, [rbx+r9]\nadd r9, 0x5\nmov rsi, r9\n\
             lea rax, [rsi+r13]",
        );
        let cfg = PrefilterConfig::default();
        let sq = compute_sketch(&q, &cfg);
        let st = compute_sketch(&t, &cfg);
        assert_eq!(sq.containment_in(&st), 1.0);
        assert!(st.containment_in(&sq) < 1.0, "t computes extra values");
    }

    #[test]
    fn unrelated_strands_have_low_containment_and_no_band_collision() {
        let q = lift_text("mov rax, rdi\nimul rax, rsi\nxor rax, 0x1234");
        let t = lift_text("mov rbx, rdi\nshr rbx, 0x7\nor rbx, 0x8000");
        let cfg = PrefilterConfig::default();
        let sq = compute_sketch(&q, &cfg);
        let st = compute_sketch(&t, &cfg);
        assert!(sq.containment_in(&st) < 0.5);
        let index = SketchIndex::build(vec![st], &cfg);
        assert!(!index.candidates(&sq)[0], "no band should collide");
    }

    #[test]
    fn identical_sketches_always_collide_in_every_band() {
        let s = compute_sketch(
            &lift_text("mov rax, rdi\nadd rax, 0x5\nimul rax, rax"),
            &PrefilterConfig::default(),
        );
        let cfg = PrefilterConfig::default();
        let index = SketchIndex::build(vec![s.clone()], &cfg);
        assert!(index.candidates(&s)[0]);
        assert_eq!(s.band_keys(cfg.bands, cfg.rows).len(), cfg.bands);
    }

    #[test]
    fn stats_counters_accumulate() {
        let stats = PrefilterStats::default();
        stats.record_pruned();
        stats.record_pruned();
        stats.record_collision();
        stats.record_fallback();
        let s = stats.snapshot();
        assert_eq!(s.pairs_pruned, 2);
        assert_eq!(s.sketch_collisions, 1);
        assert_eq!(s.exact_fallbacks, 1);
    }

    #[test]
    fn fingerprint_tracks_every_knob() {
        let base = PrefilterConfig::default();
        let mut seen = std::collections::HashSet::new();
        seen.insert(base.fingerprint());
        for cfg in [
            PrefilterConfig { enabled: false, ..base },
            PrefilterConfig { vectors: 16, ..base },
            PrefilterConfig { bands: 8, ..base },
            PrefilterConfig { rows: 3, ..base },
            PrefilterConfig { exact_fallback_margin: 0.5, ..base },
        ] {
            assert!(seen.insert(cfg.fingerprint()), "collision for {cfg:?}");
        }
    }
}
