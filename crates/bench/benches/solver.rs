//! Micro-benchmarks of the equivalence engine: normalization, random
//! refutation and SAT decisions — the per-query costs behind §5.5's
//! performance discussion.

use criterion::{criterion_group, criterion_main, Criterion};
use esh_solver::equiv::{EquivChecker, Verdict};
use esh_solver::eval::{eval, Assignment};
use esh_solver::TermPool;
use std::hint::black_box;

fn bench_normalization(c: &mut Criterion) {
    c.bench_function("solver/normalize_linear_combination", |b| {
        b.iter(|| {
            let mut p = TermPool::new();
            let x = p.var(0, 64);
            let y = p.var(1, 64);
            let five = p.constant(5, 64);
            let mut acc = p.mul(vec![five, x]);
            for k in 1..20i64 {
                let ck = p.constant(k as u64, 64);
                let t = p.mul(vec![ck, y]);
                acc = p.add2(acc, t);
            }
            black_box(acc)
        })
    });
}

fn bench_random_refutation(c: &mut Criterion) {
    let mut p = TermPool::new();
    let x = p.var(0, 64);
    let y = p.var(1, 64);
    let a = p.xor(vec![x, y]);
    let one = p.constant(1, 64);
    let xp = p.add2(x, one);
    let b = p.xor(vec![xp, y]);
    c.bench_function("solver/random_refute", |b_| {
        b_.iter(|| {
            let asn = Assignment::random(black_box(7));
            black_box(eval(&p, a, &asn) != eval(&p, b, &asn))
        })
    });
}

fn bench_sat_identity(c: &mut Criterion) {
    c.bench_function("solver/sat_prove_xor_identity_16bit", |b| {
        b.iter(|| {
            let mut ec = EquivChecker::new();
            let x = ec.pool.var(0, 16);
            let y = ec.pool.var(1, 16);
            let xor = ec.pool.xor(vec![x, y]);
            let or = ec.pool.or(vec![x, y]);
            let and = ec.pool.and(vec![x, y]);
            let diff = ec.pool.sub(or, and);
            assert_eq!(ec.check_eq(xor, diff), Verdict::Equal);
        })
    });
}

fn bench_sat_mul(c: &mut Criterion) {
    c.bench_function("solver/sat_mul_strength_reduction_12bit", |b| {
        b.iter(|| {
            let mut ec = EquivChecker::new();
            let x = ec.pool.var(0, 12);
            let y = ec.pool.var(1, 12);
            // (x*y) & 1 == (x & 1) * (y & 1): forces real multiplier blasting.
            let one = ec.pool.constant(1, 12);
            let xy = ec.pool.mul(vec![x, y]);
            let lhs = ec.pool.and(vec![xy, one]);
            let xa = ec.pool.and(vec![x, one]);
            let ya = ec.pool.and(vec![y, one]);
            let rhs = ec.pool.mul(vec![xa, ya]);
            assert_eq!(ec.check_eq(lhs, rhs), Verdict::Equal);
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_normalization, bench_random_refutation, bench_sat_identity, bench_sat_mul
);
criterion_main!(benches);
