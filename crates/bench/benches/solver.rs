//! Micro-benchmarks of the equivalence engine: normalization, random
//! refutation and SAT decisions — the per-query costs behind §5.5's
//! performance discussion.

use criterion::{criterion_group, criterion_main, Criterion};
use esh_cc::{Compiler, Vendor, VendorVersion};
use esh_core::{EngineConfig, SimilarityEngine, SolverPerf};
use esh_minic::demo;
use esh_solver::equiv::{EquivChecker, Verdict};
use esh_solver::eval::{eval, Assignment};
use esh_solver::TermPool;
use std::hint::black_box;
use std::time::Instant;

fn bench_normalization(c: &mut Criterion) {
    c.bench_function("solver/normalize_linear_combination", |b| {
        b.iter(|| {
            let mut p = TermPool::new();
            let x = p.var(0, 64);
            let y = p.var(1, 64);
            let five = p.constant(5, 64);
            let mut acc = p.mul(vec![five, x]);
            for k in 1..20i64 {
                let ck = p.constant(k as u64, 64);
                let t = p.mul(vec![ck, y]);
                acc = p.add2(acc, t);
            }
            black_box(acc)
        })
    });
}

fn bench_random_refutation(c: &mut Criterion) {
    let mut p = TermPool::new();
    let x = p.var(0, 64);
    let y = p.var(1, 64);
    let a = p.xor(vec![x, y]);
    let one = p.constant(1, 64);
    let xp = p.add2(x, one);
    let b = p.xor(vec![xp, y]);
    c.bench_function("solver/random_refute", |b_| {
        b_.iter(|| {
            let asn = Assignment::random(black_box(7));
            black_box(eval(&p, a, &asn) != eval(&p, b, &asn))
        })
    });
}

fn bench_sat_identity(c: &mut Criterion) {
    c.bench_function("solver/sat_prove_xor_identity_16bit", |b| {
        b.iter(|| {
            let mut ec = EquivChecker::new();
            let x = ec.pool.var(0, 16);
            let y = ec.pool.var(1, 16);
            let xor = ec.pool.xor(vec![x, y]);
            let or = ec.pool.or(vec![x, y]);
            let and = ec.pool.and(vec![x, y]);
            let diff = ec.pool.sub(or, and);
            assert_eq!(ec.check_eq(xor, diff), Verdict::Equal);
        })
    });
}

fn bench_sat_mul(c: &mut Criterion) {
    c.bench_function("solver/sat_mul_strength_reduction_12bit", |b| {
        b.iter(|| {
            let mut ec = EquivChecker::new();
            let x = ec.pool.var(0, 12);
            let y = ec.pool.var(1, 12);
            // (x*y) & 1 == (x & 1) * (y & 1): forces real multiplier blasting.
            let one = ec.pool.constant(1, 12);
            let xy = ec.pool.mul(vec![x, y]);
            let lhs = ec.pool.and(vec![xy, one]);
            let xa = ec.pool.and(vec![x, one]);
            let ya = ec.pool.and(vec![y, one]);
            let rhs = ec.pool.mul(vec![xa, ya]);
            assert_eq!(ec.check_eq(lhs, rhs), Verdict::Equal);
        })
    });
}

/// Whether the bench runs in CI smoke mode (`ESH_BENCH_QUICK=1`): a
/// smaller corpus and fewer samples, enough to prove the harness works.
fn quick_mode() -> bool {
    std::env::var("ESH_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Runs the full query pipeline (decompose → prefilter → vcp_matrix →
/// scoring) over a demo CVE corpus with the SAT backend in the given
/// mode, and returns total query wall time plus the engine's aggregate
/// solver counters.
fn run_vcp_workload(incremental: bool, nfuncs: usize) -> (f64, SolverPerf) {
    let mut config = EngineConfig {
        threads: 2,
        ..EngineConfig::default()
    };
    config.equiv.incremental = incremental;
    let clang = Compiler::new(Vendor::Clang, VendorVersion::new(3, 5));
    let icc = Compiler::new(Vendor::Icc, VendorVersion::new(15, 0));
    let mut engine = SimilarityEngine::new(config);
    for (i, (_, f)) in demo::cve_functions().into_iter().take(nfuncs).enumerate() {
        engine.add_target(format!("clang-{i}"), &clang.compile_function(&f));
        engine.add_target(format!("icc-{i}"), &icc.compile_function(&f));
    }
    let gcc = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9));
    let queries: Vec<_> = demo::cve_functions()
        .into_iter()
        .take(nfuncs)
        .map(|(_, f)| gcc.compile_function(&f))
        .collect();
    let t0 = Instant::now();
    for q in &queries {
        black_box(engine.query(q));
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    (wall_ms, engine.solver_stats())
}

fn perf_json(wall_ms: f64, p: &SolverPerf) -> String {
    format!(
        "{{\n      \"wall_ms\": {wall_ms:.2},\n      \"sat_queries\": {},\n      \
         \"conflicts\": {},\n      \"conflicts_per_query\": {:.3},\n      \
         \"sat_time_ms\": {:.2},\n      \"blast_cache_hits\": {},\n      \
         \"blast_cache_misses\": {},\n      \"retained_learnts\": {},\n      \
         \"learnts_dropped\": {},\n      \"solver_resets\": {}\n    }}",
        p.sat_queries,
        p.conflicts,
        p.conflicts_per_query(),
        p.sat_time_ns as f64 / 1e6,
        p.blast_cache_hits,
        p.blast_cache_misses,
        p.retained_learnts,
        p.learnts_dropped,
        p.solver_resets,
    )
}

/// Head-to-head: the whole vcp_matrix workload with fresh-blaster SAT
/// decisions vs the shared incremental solver. Writes the comparison to
/// `BENCH_solver.json` at the repo root (the ISSUE-2 acceptance record).
fn bench_fresh_vs_incremental(c: &mut Criterion) {
    let nfuncs = if quick_mode() {
        2
    } else {
        demo::cve_functions().len()
    };
    let (fresh_ms, fresh) = run_vcp_workload(false, nfuncs);
    let (inc_ms, inc) = run_vcp_workload(true, nfuncs);
    let json = format!(
        "{{\n  \"bench\": \"solver/vcp_matrix_fresh_vs_incremental\",\n  \
         \"quick_mode\": {},\n  \"functions\": {nfuncs},\n  \
         \"fresh\": {},\n  \"incremental\": {},\n  \
         \"wall_speedup\": {:.3},\n  \"conflict_ratio\": {:.3}\n}}\n",
        quick_mode(),
        perf_json(fresh_ms, &fresh),
        perf_json(inc_ms, &inc),
        fresh_ms / inc_ms.max(1e-9),
        inc.conflicts as f64 / (fresh.conflicts as f64).max(1.0),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_solver.json");
    std::fs::write(path, &json).expect("write BENCH_solver.json");
    println!(
        "vcp_matrix workload ({nfuncs} funcs): fresh {fresh_ms:.1} ms / {} conflicts, \
         incremental {inc_ms:.1} ms / {} conflicts -> {path}",
        fresh.conflicts, inc.conflicts,
    );

    let samples = if quick_mode() { 1 } else { 5 };
    let timed = |name: &str, incremental: bool| {
        let mut group = Criterion::default().sample_size(samples);
        group.bench_function(name, |b| {
            b.iter(|| black_box(run_vcp_workload(incremental, nfuncs)))
        });
    };
    timed("solver/vcp_matrix_fresh_blast", false);
    timed("solver/vcp_matrix_incremental", true);
    let _ = c;
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_normalization, bench_random_refutation, bench_sat_identity, bench_sat_mul,
        bench_fresh_vs_incremental
);
criterion_main!(benches);
