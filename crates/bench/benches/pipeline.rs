//! Pipeline micro-benchmarks: compilation, strand extraction, lifting,
//! signature hashing, pairwise VCP — the stages behind the ~3-minute
//! per-procedure-pair figure the paper reports (§5.5), here measured on
//! the reproduction's substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use esh_cc::{Compiler, Vendor, VendorVersion};
use esh_core::{vcp_pair, VcpConfig};
use esh_minic::demo;
use esh_strands::{extract_proc_strands, lift_strand, semantic_signature};
use esh_verifier::VerifierSession;
use std::hint::black_box;

fn bench_compile(c: &mut Criterion) {
    let f = demo::heartbleed_like();
    let cc = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9));
    c.bench_function("pipeline/compile_heartbleed", |b| {
        b.iter(|| black_box(cc.compile_function(&f)))
    });
}

fn bench_strand_extraction(c: &mut Criterion) {
    let f = demo::heartbleed_like();
    let p = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9)).compile_function(&f);
    c.bench_function("pipeline/extract_strands_heartbleed", |b| {
        b.iter(|| black_box(extract_proc_strands(&p)))
    });
}

fn bench_lift(c: &mut Criterion) {
    let f = demo::heartbleed_like();
    let p = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9)).compile_function(&f);
    let strands = extract_proc_strands(&p);
    c.bench_function("pipeline/lift_all_strands_heartbleed", |b| {
        b.iter(|| {
            for s in &strands {
                black_box(lift_strand(s));
            }
        })
    });
}

fn bench_signature(c: &mut Criterion) {
    let f = demo::heartbleed_like();
    let p = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9)).compile_function(&f);
    let lifted: Vec<_> = extract_proc_strands(&p).iter().map(lift_strand).collect();
    c.bench_function("pipeline/semantic_signatures_heartbleed", |b| {
        b.iter(|| {
            for l in &lifted {
                black_box(semantic_signature(l));
            }
        })
    });
}

fn bench_vcp_pair(c: &mut Criterion) {
    let f = demo::heartbleed_like();
    let a = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9)).compile_function(&f);
    let b_ = Compiler::new(Vendor::Clang, VendorVersion::new(3, 5)).compile_function(&f);
    let sa: Vec<_> = extract_proc_strands(&a).iter().map(lift_strand).collect();
    let sb: Vec<_> = extract_proc_strands(&b_).iter().map(lift_strand).collect();
    let qa = sa.iter().max_by_key(|p| p.vars.len()).expect("strands");
    let qb = sb.iter().max_by_key(|p| p.vars.len()).expect("strands");
    let config = VcpConfig::default();
    c.bench_function("pipeline/vcp_largest_strand_pair_cross_vendor", |b| {
        let mut session = VerifierSession::new();
        b.iter(|| black_box(vcp_pair(&mut session, qa, qb, &config)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_compile, bench_strand_extraction, bench_lift, bench_signature, bench_vcp_pair
);
criterion_main!(benches);
