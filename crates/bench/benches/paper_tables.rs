//! Table/figure regeneration benches: each paper artifact is regenerated
//! once (printed to the bench log) and its core unit of work — an engine
//! query over the corpus — is timed. Full-scale regeneration lives in the
//! `esh-eval` binaries (`table1`..`fig6`).

use criterion::{criterion_group, criterion_main, Criterion};
use esh_bench::smoke_setup;
use esh_core::EngineConfig;
use esh_corpus::Corpus;
use esh_eval::experiments::{
    fig6_indices, run_fig5, run_fig6, run_table1, run_table2, run_table3, Scale,
};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let (corpus, engine) = smoke_setup();
    let t1 = run_table1(&corpus, &engine);
    println!("\n=== Table 1 (smoke scale) ===\n{}", t1.render());
    let qi = corpus.query_for("CVE-2014-0160", "").expect("heartbleed");
    let qp = corpus.procs[qi].proc_.clone();
    c.bench_function("table1/heartbleed_query_smoke_corpus", |b| {
        b.iter(|| black_box(engine.query(&qp)))
    });
}

fn bench_table2(c: &mut Criterion) {
    let corpus = Corpus::build(&Scale::Smoke.corpus_config());
    let t2 = run_table2(&corpus, EngineConfig::default());
    println!("\n=== Table 2 (smoke scale) ===\n{}", t2.render());
    let qi = corpus.query_for("CVE-2014-0160", "").expect("heartbleed");
    let q = corpus.procs[qi].proc_.clone();
    let t = corpus.procs[(qi + 1) % corpus.procs.len()].proc_.clone();
    c.bench_function("table2/tracy_pairwise", |b| {
        b.iter(|| black_box(esh_baselines::tracy_similarity(&q, &t)))
    });
}

fn bench_table3(c: &mut Criterion) {
    let t3 = run_table3(8);
    println!("\n=== Table 3 (8 distractors) ===\n{}", t3.render());
    c.bench_function("table3/bindiff_whole_library", |b| {
        b.iter(|| black_box(run_table3(4)))
    });
}

fn bench_fig5(c: &mut Criterion) {
    let (corpus, engine) = smoke_setup();
    let f5 = run_fig5(&corpus, &engine);
    println!("\n=== Figure 5 (smoke scale) ===\n{}", f5.render());
    let qi = corpus
        .query_for("CVE-2014-0160", "clang 3.5")
        .expect("heartbleed");
    let qp = corpus.procs[qi].proc_.clone();
    c.bench_function("fig5/normalized_ranking", |b| {
        b.iter(|| {
            let scores = engine.query(&qp);
            black_box(scores.normalized())
        })
    });
}

fn bench_fig6(c: &mut Criterion) {
    let corpus = Corpus::build(&Scale::Smoke.corpus_config());
    let indices = fig6_indices(&corpus, 8);
    let f6 = run_fig6(&corpus, &indices, EngineConfig::default());
    println!(
        "\n=== Figure 6 (smoke scale, {} queries) ===\n{}",
        indices.len(),
        f6.render()
    );
    println!("asymmetry: {:.4}", f6.asymmetry());
    c.bench_function("fig6/roc_croc_metrics", |b| {
        let items: Vec<(f64, bool)> = (0..200)
            .map(|i| (f64::from(i % 97) / 97.0, i % 13 == 0))
            .collect();
        b.iter(|| {
            black_box(esh_eval::roc_auc(&items));
            black_box(esh_eval::croc_auc(&items))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_table2, bench_table3, bench_fig5, bench_fig6
);
criterion_main!(benches);
