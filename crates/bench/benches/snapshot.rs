//! Serving-layer benchmarks: corpus build vs snapshot reload, and
//! cold-cache vs warm-cache query latency — the two wins that turn the
//! batch pipeline into a persistent service (see docs/ARCHITECTURE.md).

use criterion::{criterion_group, criterion_main, Criterion};
use esh_cc::{Compiler, Vendor, VendorVersion};
use esh_core::{EngineConfig, SimilarityEngine};
use esh_minic::demo;
use std::hint::black_box;

fn config() -> EngineConfig {
    EngineConfig {
        threads: 2,
        ..EngineConfig::default()
    }
}

fn corpus_engine() -> SimilarityEngine {
    let clang = Compiler::new(Vendor::Clang, VendorVersion::new(3, 5));
    let icc = Compiler::new(Vendor::Icc, VendorVersion::new(15, 0));
    let mut engine = SimilarityEngine::new(config());
    for (i, (_, f)) in demo::cve_functions().into_iter().enumerate() {
        engine.add_target(format!("clang-{i}"), &clang.compile_function(&f));
        engine.add_target(format!("icc-{i}"), &icc.compile_function(&f));
    }
    engine
}

fn bench_build_vs_load(c: &mut Criterion) {
    let path = std::env::temp_dir().join(format!("esh-bench-snapshot-{}", std::process::id()));
    corpus_engine().save(&path).unwrap();

    c.bench_function("snapshot/build_corpus_engine", |b| {
        b.iter(|| black_box(corpus_engine()))
    });
    c.bench_function("snapshot/load_corpus_engine", |b| {
        b.iter(|| black_box(SimilarityEngine::load(&path).unwrap()))
    });
    std::fs::remove_file(&path).ok();
}

fn bench_cold_vs_warm_query(c: &mut Criterion) {
    let gcc = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9));
    let query = gcc.compile_function(&demo::heartbleed_like());

    c.bench_function("snapshot/query_cold_cache", |b| {
        // A fresh engine each iteration: every VCP pair hits the verifier.
        b.iter(|| {
            let engine = corpus_engine();
            black_box(engine.query(&query))
        })
    });

    let warmed = corpus_engine();
    warmed.query(&query);
    c.bench_function("snapshot/query_warm_cache", |b| {
        b.iter(|| black_box(warmed.query(&query)))
    });
}

criterion_group!(
    name = snapshot;
    config = Criterion::default().sample_size(10);
    targets = bench_build_vs_load, bench_cold_vs_warm_query
);
criterion_main!(snapshot);
