//! Ablation benches for the design choices DESIGN.md calls out: the
//! signature prefilter, the minimum-strand-size threshold and the
//! size-ratio filter. Each prints its accuracy effect once and times the
//! query under both settings.

use criterion::{criterion_group, criterion_main, Criterion};
use esh_core::{EngineConfig, SimilarityEngine, VcpConfig};
use esh_corpus::{Corpus, CorpusConfig};
use esh_eval::roc_auc;
use std::hint::black_box;

fn engine_with(corpus: &Corpus, config: EngineConfig) -> SimilarityEngine {
    let mut engine = SimilarityEngine::new(config);
    for p in &corpus.procs {
        engine.add_target(p.display(), &p.proc_);
    }
    engine
}

fn roc_of(corpus: &Corpus, engine: &SimilarityEngine, qi: usize) -> f64 {
    let scores = engine.query(&corpus.procs[qi].proc_);
    let items: Vec<(f64, bool)> = scores
        .scores
        .iter()
        .filter(|s| s.target.0 != qi)
        .map(|s| {
            (
                s.ges,
                corpus.procs[s.target.0].func == corpus.procs[qi].func,
            )
        })
        .collect();
    roc_auc(&items)
}

fn bench_prefilter_ablation(c: &mut Criterion) {
    let corpus = Corpus::build(&CorpusConfig::small());
    let qi = corpus.query_for("CVE-2014-0160", "").expect("heartbleed");
    let on = engine_with(&corpus, EngineConfig::default());
    let off = engine_with(
        &corpus,
        EngineConfig {
            prefilter: false,
            ..EngineConfig::default()
        },
    );
    println!(
        "\n=== Ablation: signature prefilter ===\n\
         ROC with prefilter:    {:.3}\nROC without prefilter: {:.3} (must be equal: the \
         filter is an exact upper bound)",
        roc_of(&corpus, &on, qi),
        roc_of(&corpus, &off, qi)
    );
    let qp = corpus.procs[qi].proc_.clone();
    c.bench_function("ablation/query_with_prefilter", |b| {
        b.iter(|| black_box(on.query(&qp)))
    });
    c.bench_function("ablation/query_without_prefilter", |b| {
        b.iter(|| black_box(off.query(&qp)))
    });
}

fn bench_min_strand_size(c: &mut Criterion) {
    let corpus = Corpus::build(&CorpusConfig::small());
    let qi = corpus.query_for("CVE-2014-0160", "").expect("heartbleed");
    println!("\n=== Ablation: minimum strand size (§5.5, paper uses 5) ===");
    for min in [1usize, 3, 5, 8] {
        let cfg = EngineConfig {
            vcp: VcpConfig {
                min_strand_vars: min,
                ..VcpConfig::default()
            },
            ..EngineConfig::default()
        };
        let engine = engine_with(&corpus, cfg);
        println!(
            "min_strand_vars = {min}: ROC = {:.3}",
            roc_of(&corpus, &engine, qi)
        );
    }
    let engine = engine_with(&corpus, EngineConfig::default());
    let qp = corpus.procs[qi].proc_.clone();
    c.bench_function("ablation/query_default_strand_threshold", |b| {
        b.iter(|| black_box(engine.query(&qp)))
    });
}

fn bench_granularity(c: &mut Criterion) {
    use esh_core::Granularity;
    let corpus = Corpus::build(&CorpusConfig::small());
    let qi = corpus.query_for("CVE-2014-0160", "").expect("heartbleed");
    println!("\n=== Ablation: decomposition granularity (§3.2) ===");
    for (name, g) in [
        ("strands", Granularity::Strands),
        ("whole-blocks", Granularity::WholeBlocks),
    ] {
        let cfg = EngineConfig { granularity: g, ..EngineConfig::default() };
        let engine = engine_with(&corpus, cfg);
        println!(
            "{name}: ROC = {:.3} ({} classes)",
            roc_of(&corpus, &engine, qi),
            engine.class_count()
        );
    }
    let engine = engine_with(
        &corpus,
        EngineConfig { granularity: Granularity::WholeBlocks, ..EngineConfig::default() },
    );
    let qp = corpus.procs[qi].proc_.clone();
    c.bench_function("ablation/query_whole_block_granularity", |b| {
        b.iter(|| black_box(engine.query(&qp)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_prefilter_ablation, bench_min_strand_size, bench_granularity
);
criterion_main!(benches);
