//! # esh-bench — the Criterion benchmark harness
//!
//! One bench target per paper table/figure plus micro-benchmarks and
//! ablations. The heavy experiment benches print their regenerated
//! table/figure once, then time the core unit of work (an engine query)
//! at smoke scale so `cargo bench` stays tractable; run the `esh-eval`
//! binaries for full-scale regeneration.

/// Shared helper: a smoke-scale corpus and engine for benches.
pub fn smoke_setup() -> (esh_corpus::Corpus, esh_core::SimilarityEngine) {
    let corpus = esh_corpus::Corpus::build(&esh_corpus::CorpusConfig::small());
    let mut engine = esh_core::SimilarityEngine::new(esh_core::EngineConfig::default());
    for p in &corpus.procs {
        engine.add_target(p.display(), &p.proc_);
    }
    (corpus, engine)
}
